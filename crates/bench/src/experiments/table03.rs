//! Table 3: maximum possible batch sizes, IBM LMS vs DeepUM.
//!
//! "DeepUM can run the models with the batch size that requires the peak
//! memory usage to be almost the same as the total CPU memory size."
//! DeepUM's bound is probed by replaying the workload's allocation
//! sequence through the caching allocator over UM space (host-memory
//! budget); LMS's bound is probed by actually executing iterations of
//! the swap path, where the device-memory pool (and its fragmentation)
//! decides.

use deepum_torch::alloc::CachingAllocator;
use deepum_torch::models::ModelKind;
use deepum_torch::step::Step;
use deepum_um::space::UmSpace;
use serde::{Deserialize, Serialize};

use crate::cache::RunCache;
use crate::opts::Opts;
use crate::systems::{run_system, RunParams, System};
use crate::table::Table;

/// The Table 3 models with the paper's LMS-side starting points.
pub const MODELS: &[(ModelKind, usize)] = &[
    (ModelKind::Gpt2Xl, 3),
    (ModelKind::Gpt2L, 3),
    (ModelKind::BertLarge, 14),
    (ModelKind::BertBase, 29),
    (ModelKind::Dlrm, 128_000),
    (ModelKind::ResNet200, 1536),
    (ModelKind::ResNet152, 1536),
];

/// Result row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxBatchRow {
    /// Model label.
    pub model: String,
    /// Largest batch LMS completes.
    pub lms: usize,
    /// Largest batch DeepUM's allocation probe admits.
    pub deepum: usize,
}

/// True if every allocation of `workload(batch)` fits the UM space.
pub fn deepum_alloc_probe(model: ModelKind, batch: usize, host_bytes: u64) -> bool {
    let workload = model.build(batch);
    let mut space = UmSpace::new(host_bytes);
    let mut alloc = CachingAllocator::new();
    let mut events = Vec::new();
    let mut map = std::collections::HashMap::new();
    for t in &workload.persistent {
        match alloc.alloc(t.bytes, &mut space, &mut events) {
            Ok((id, _)) => {
                map.insert(t.id, id);
            }
            Err(_) => return false,
        }
        events.clear();
    }
    for step in &workload.steps {
        match step {
            Step::Alloc(t) => match alloc.alloc(t.bytes, &mut space, &mut events) {
                Ok((id, _)) => {
                    map.insert(t.id, id);
                }
                Err(_) => return false,
            },
            Step::Free(id) => {
                let block = map.remove(id).expect("free of unallocated tensor");
                alloc.free(block, &mut events);
            }
            Step::Kernel(_) => {}
        }
        events.clear();
    }
    true
}

/// Largest batch for which `ok` holds, searched by doubling then
/// bisection from `start`.
pub fn max_batch<F: FnMut(usize) -> bool>(start: usize, cap: usize, mut ok: F) -> usize {
    let mut lo = 0usize; // largest known-good
    let mut hi = start.max(1);
    // Grow until failure (or cap).
    loop {
        if hi > cap {
            hi = cap + 1;
            break;
        }
        if ok(hi) {
            lo = hi;
            hi *= 2;
        } else {
            break;
        }
    }
    // Bisect (lo good, hi bad).
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Runs the Table 3 search.
pub fn run(opts: &Opts) -> Vec<MaxBatchRow> {
    let cache = RunCache::new(&opts.out);
    let mut rows = Vec::new();
    for &(model, start) in MODELS {
        if !opts.selected(model.label()) {
            continue;
        }
        let mut params = RunParams::v100_32gb(2, opts.seed);
        params.costs.device_memory_bytes = opts.memory(params.costs.device_memory_bytes);
        params.costs.host_memory_bytes = opts.memory(params.costs.host_memory_bytes);
        let host = params.costs.host_memory_bytes;
        let start = opts.batch(start);
        let cap = start.saturating_mul(512).max(1024);

        let lms = max_batch(start, cap, |b| {
            let key = format!("max-lms-{}-b{}-sc{}", model.label(), b, opts.scale);
            cache
                .run(&key, || run_system(&System::Lms, &model.build(b), &params))
                .is_ok()
        });
        let deepum = max_batch(start, cap, |b| deepum_alloc_probe(model, b, host));
        rows.push(MaxBatchRow {
            model: model.label().into(),
            lms,
            deepum,
        });
    }
    rows
}

/// Renders Table 3.
pub fn table(rows: &[MaxBatchRow]) -> Table {
    let mut t = Table::new(
        "Table 3: maximum possible batch sizes (V100 32GB, 512GB host)",
        &["model", "lms", "deepum"],
    );
    for r in rows {
        t.row([r.model.clone(), r.lms.to_string(), r.deepum.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_finds_threshold() {
        // ok(b) = b <= 37
        let got = max_batch(4, 10_000, |b| b <= 37);
        assert_eq!(got, 37);
        let got = max_batch(64, 10_000, |b| b <= 37);
        assert_eq!(got, 37);
    }

    #[test]
    fn search_respects_cap() {
        assert_eq!(max_batch(4, 100, |_| true), 100);
    }

    #[test]
    fn search_handles_immediate_failure() {
        assert_eq!(max_batch(4, 100, |_| false), 0);
    }

    #[test]
    fn alloc_probe_monotone_in_memory() {
        let small = deepum_alloc_probe(ModelKind::MobileNet, 64, 64 << 20);
        let big = deepum_alloc_probe(ModelKind::MobileNet, 64, 16 << 30);
        assert!(!small);
        assert!(big);
    }
}
