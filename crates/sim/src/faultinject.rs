//! Seeded, deterministic fault injection for robustness testing.
//!
//! Real UM deployments degrade in ways the happy-path simulation never
//! exercises: DMA engines time out and retry, the host runs out of free
//! pages mid-write-back, fault buffers overflow under storm loads, and
//! driver tables shed entries under memory pressure. This module provides
//! the **chaos layer** the stack reacts to:
//!
//! * [`InjectionPlan`] — a declarative description of which faults to
//!   inject and how often;
//! * [`FaultInjector`] — the seeded roll engine threaded through the GPU
//!   engine, the UM driver, and the DeepUM driver;
//! * [`InjectionStats`] — counts of everything injected and of the
//!   stack's reactions (retries, backoff time, fallbacks);
//! * [`BackendHealth`] / [`DegradationState`] — the backend-side health
//!   surface (prefetch-watchdog transitions, queue backpressure).
//!
//! Two properties are load-bearing:
//!
//! 1. **Determinism.** The injector owns one [`DetRng`] seeded from the
//!    plan; the simulation is single-threaded, so the same seed and plan
//!    reproduce the exact same fault trace, byte for byte.
//! 2. **Zero cost when disabled.** A roll whose rate is `0.0` draws *no*
//!    random number, so an empty plan leaves the RNG stream — and
//!    therefore every simulation result — identical to a run with no
//!    injector installed at all.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::Ns;

/// Salt xor-ed into [`InjectionPlan::seed`] to derive the hard-fault RNG
/// stream, so ECC sampling never perturbs the transient roll stream.
const HARD_FAULT_SEED_SALT: u64 = 0x4845_4343_5245_5345; // "HECCRESE"

/// Declarative description of the faults to inject into one run.
///
/// All `*_rate` fields are per-event probabilities in `[0.0, 1.0]`; a
/// rate of `0.0` disables that fault class entirely (no RNG draw). The
/// default plan is empty: every rate is zero.
///
/// # Example
///
/// ```
/// use deepum_sim::faultinject::InjectionPlan;
///
/// let plan = InjectionPlan {
///     seed: 7,
///     dma_h2d_fail_rate: 0.05,
///     ..InjectionPlan::default()
/// };
/// assert!(!plan.is_empty());
/// assert!(InjectionPlan::default().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectionPlan {
    /// Seed of the injector's RNG stream (independent of the workload
    /// seed, so chaos can vary while the workload stays fixed).
    pub seed: u64,
    /// Probability that a host→device DMA attempt fails transiently.
    /// The driver retries with exponential backoff ([`Self::backoff_base`],
    /// at most [`Self::max_retries`] retries); demand migrations then
    /// force through (the replay loop cannot abandon), prefetch
    /// migrations are abandoned and fall back to the demand path.
    pub dma_h2d_fail_rate: f64,
    /// Probability that a device→host write-back DMA fails transiently.
    /// Write-backs can never be abandoned (that would lose data), so
    /// after `max_retries` backoffs the transfer is forced through.
    pub dma_d2h_fail_rate: f64,
    /// Probability that an eviction episode hits a transient host OOM:
    /// victim selection then prefers blocks evictable *without*
    /// write-back (invalidatable pages, Section 5.2), and every victim
    /// that still must write back pays one extra `backoff_base` stall.
    pub host_oom_rate: f64,
    /// Probability per fault-buffer drain that a fault storm begins,
    /// shrinking the effective demand batch to
    /// [`Self::storm_capacity_frac`] for [`Self::storm_duration_drains`]
    /// drains (more drains, more per-batch overhead).
    pub storm_rate: f64,
    /// Effective fault-batch capacity fraction during a storm, clamped
    /// to `[0.0, 1.0]`; the batch never shrinks below one entry.
    pub storm_capacity_frac: f64,
    /// How many drains a storm lasts once triggered.
    pub storm_duration_drains: u32,
    /// Probability that a correlation-table pair record is dropped
    /// before it reaches the table (models table-update loss under
    /// memory pressure); the prefetcher must cope with holes.
    pub corr_drop_rate: f64,
    /// Probability that a kernel launch hits a delay spike of
    /// [`Self::launch_delay`].
    pub launch_delay_rate: f64,
    /// Probability that one serving-request execution step hits a
    /// transient failure (models a flaky decode step under load); the
    /// serving layer retries with backoff and sheds the request with a
    /// typed reason once [`Self::max_retries`] is exhausted.
    pub request_fail_rate: f64,
    /// Magnitude of an injected kernel-launch delay spike.
    pub launch_delay: Ns,
    /// Bounded retry attempts for transient DMA failures.
    pub max_retries: u32,
    /// First retry backoff; doubles per attempt (simulated time).
    pub backoff_base: Ns,
    /// Ceiling on a single retry backoff. Doubling is saturating and
    /// clamps here, so pathological retry storms cannot overflow `Ns`
    /// or charge unbounded stall time per attempt.
    pub max_backoff: Ns,
    /// **Hard fault.** Global kernel-launch sequence numbers (0-based)
    /// at which the device resets *before* that launch executes. Each
    /// entry fires exactly once per run, even across recovery replays.
    pub device_reset_at: Vec<u64>,
    /// **Hard fault.** Fault-buffer drain ordinals (0-based, cumulative
    /// across the whole run including replays) at which the UM driver
    /// crashes mid-drain, before touching any driver state. Each entry
    /// fires exactly once.
    pub driver_crash_at: Vec<u64>,
    /// **Hard fault.** Probability per fault-buffer drain that an
    /// uncorrectable ECC error hits the correlation state backing one
    /// sampled block of the drained batch. Rolled on a dedicated RNG
    /// stream (seeded from [`Self::seed`] xor a fixed salt) so enabling
    /// ECC never disturbs the transient fault trace.
    pub ecc_rate: f64,
    /// Fixed downtime charged for one device reset (bus re-init,
    /// context re-creation), on top of re-migrating the resident set.
    pub reset_penalty: Ns,
    /// **Wear.** Probability per fault-buffer drain that an
    /// uncorrectable ECC error lands in a device page frame and retires
    /// it permanently: the frame is blacklisted, effective device
    /// capacity shrinks by one page, and any data on the frame is
    /// live-migrated off. Rolled on the dedicated hard-fault RNG
    /// stream; retirement is never rewound by recovery.
    pub ecc_retire_rate: f64,
    /// **Wear.** Fault-buffer drain ordinals (same numbering as
    /// [`Self::driver_crash_at`]) at which exactly one device page
    /// frame is retired deterministically (no RNG draw). Each entry
    /// fires exactly once, even across recovery replays. A driver
    /// crash scheduled at the same ordinal wins: the drain aborts
    /// before the retirement is applied, and the entry is consumed.
    pub retire_pages_at: Vec<u64>,
    /// **Hard fault.** Probability that storing one checkpoint
    /// generation corrupts the stored image — a bit flip, a torn write
    /// (tail zeroed), or a truncation, sampled uniformly on the
    /// hard-fault RNG stream. Detected only at restore time, when the
    /// image's checksum is verified.
    pub ckpt_corrupt_rate: f64,
    /// **Hard fault.** Checkpoint ordinals (0-based count of stored
    /// checkpoint images, across the whole run) whose stored image is
    /// corrupted deterministically (one bit flipped mid-image, no RNG
    /// draw). Each entry fires exactly once.
    pub ckpt_corrupt_at: Vec<u64>,
}

impl Default for InjectionPlan {
    fn default() -> Self {
        InjectionPlan {
            seed: 0,
            dma_h2d_fail_rate: 0.0,
            dma_d2h_fail_rate: 0.0,
            host_oom_rate: 0.0,
            storm_rate: 0.0,
            storm_capacity_frac: 0.25,
            storm_duration_drains: 4,
            corr_drop_rate: 0.0,
            launch_delay_rate: 0.0,
            request_fail_rate: 0.0,
            launch_delay: Ns::from_micros(50),
            max_retries: 4,
            backoff_base: Ns::from_micros(2),
            max_backoff: Ns::from_millis(10),
            device_reset_at: Vec::new(),
            driver_crash_at: Vec::new(),
            ecc_rate: 0.0,
            reset_penalty: Ns::from_millis(2),
            ecc_retire_rate: 0.0,
            retire_pages_at: Vec::new(),
            ckpt_corrupt_rate: 0.0,
            ckpt_corrupt_at: Vec::new(),
        }
    }
}

impl InjectionPlan {
    /// True if every fault class — transient and hard — is disabled:
    /// installing an injector for an empty plan changes nothing about a
    /// run.
    pub fn is_empty(&self) -> bool {
        !self.has_transients() && !self.has_hard_faults()
    }

    /// True if any transient (recoverable-in-place) fault class is
    /// enabled. Drives the health-report gate: hard-only plans draw no
    /// transient randomness, so their reports stay byte-identical to a
    /// fault-free run modulo the recovery section.
    pub fn has_transients(&self) -> bool {
        self.dma_h2d_fail_rate > 0.0
            || self.dma_d2h_fail_rate > 0.0
            || self.host_oom_rate > 0.0
            || self.storm_rate > 0.0
            || self.corr_drop_rate > 0.0
            || self.launch_delay_rate > 0.0
            || self.request_fail_rate > 0.0
    }

    /// True if any hard (crash-class) fault is scheduled or enabled:
    /// device resets, driver crashes, uncorrectable ECC, device wear,
    /// or checkpoint-image corruption.
    pub fn has_hard_faults(&self) -> bool {
        !self.device_reset_at.is_empty()
            || !self.driver_crash_at.is_empty()
            || self.ecc_rate > 0.0
            || self.has_wear()
            || self.has_ckpt_corruption()
    }

    /// True if device wear (permanent ECC page retirement) is enabled,
    /// sampled or scheduled.
    pub fn has_wear(&self) -> bool {
        self.ecc_retire_rate > 0.0 || !self.retire_pages_at.is_empty()
    }

    /// True if stored checkpoint images can be corrupted, sampled or
    /// scheduled.
    pub fn has_ckpt_corruption(&self) -> bool {
        self.ckpt_corrupt_rate > 0.0 || !self.ckpt_corrupt_at.is_empty()
    }

    /// Builds the shared injector handle the executor threads through
    /// the engine and the driver stack.
    pub fn build_shared(&self) -> SharedInjector {
        Rc::new(RefCell::new(FaultInjector::new(self.clone())))
    }
}

/// Counts of injected faults and of the stack's reactions. Part of the
/// run report's health section.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionStats {
    /// Host→device DMA attempts that failed transiently.
    pub dma_h2d_failures: u64,
    /// Device→host write-back DMA attempts that failed transiently.
    pub dma_d2h_failures: u64,
    /// Eviction episodes that hit a transient host OOM.
    pub host_oom_events: u64,
    /// Fault storms triggered.
    pub storms: u64,
    /// Fault-buffer drains executed at storm-shrunk capacity.
    pub storm_drains: u64,
    /// Correlation-table pair records dropped before insertion.
    pub corr_records_dropped: u64,
    /// Kernel launches hit by a delay spike.
    pub launch_delays: u64,
    /// Total injected launch-delay time.
    pub launch_delay_time: Ns,
    /// DMA retry attempts performed by the driver.
    pub migration_retries: u64,
    /// Total simulated backoff time charged for retries.
    pub backoff_time: Ns,
    /// Prefetch migrations abandoned after retry exhaustion (the pages
    /// fall back to the demand path).
    pub prefetches_abandoned: u64,
    /// Eviction victims chosen by the host-OOM fallback because they
    /// needed no write-back (fully invalidatable residency).
    pub writeback_fallbacks: u64,
    /// Serving-request steps that hit an injected transient failure.
    pub request_failures: u64,
}

/// Shared handle to one run's injector: the executor owns it and clones
/// it into the GPU engine and the driver stack. `Rc<RefCell<..>>` is
/// deliberate — the simulation is single-threaded, and a single shared
/// RNG stream is what makes the fault trace reproducible.
pub type SharedInjector = Rc<RefCell<FaultInjector>>;

/// Transient slice of a [`FaultInjector`]'s state, captured into run
/// checkpoints so that replay after a device reset re-draws the exact
/// transient fault trace the original execution saw.
///
/// Hard-fault bookkeeping (fired reset/crash schedules, the drain
/// ordinal, the hard-fault RNG) is deliberately *not* part of this
/// snapshot: scheduled hard faults are consumed-once, so rewinding the
/// simulation never re-fires the crash that triggered the rewind.
#[derive(Debug, Clone)]
pub struct TransientInjectorState {
    rng: DetRng,
    stats: InjectionStats,
    storm_drains_left: u32,
}

/// The seeded roll engine behind an [`InjectionPlan`].
#[derive(Debug)]
pub struct FaultInjector {
    plan: InjectionPlan,
    rng: DetRng,
    stats: InjectionStats,
    storm_drains_left: u32,
    /// Dedicated RNG for hard-fault sampling (ECC block choice), so a
    /// non-zero `ecc_rate` never perturbs the transient roll stream.
    hard_rng: DetRng,
    /// Kernel sequence numbers whose scheduled device reset already
    /// fired (consumed-once; survives recovery rewinds).
    resets_fired: BTreeSet<u64>,
    /// Drain ordinals whose scheduled driver crash already fired.
    crashes_fired: BTreeSet<u64>,
    /// Cumulative fault-buffer drain count, across replays; never
    /// rewound, so crash schedules cannot re-fire during recovery.
    drain_ordinal: u64,
    /// Uncorrectable ECC hits rolled so far (hard-fault bookkeeping,
    /// never rewound; reported via the recovery section, not
    /// [`InjectionStats`]).
    ecc_hits: u64,
    /// Drain ordinals whose scheduled page retirement already fired.
    retires_fired: BTreeSet<u64>,
    /// Cumulative drain count seen by [`Self::take_scheduled_retirement`];
    /// advances in lock-step with `drain_ordinal` (both are called once
    /// per drain) and is likewise never rewound.
    retire_ordinal: u64,
    /// Checkpoint ordinals whose scheduled corruption already fired.
    ckpt_corruptions_fired: BTreeSet<u64>,
    /// Cumulative count of stored checkpoint images; never rewound, so
    /// a corruption schedule cannot re-fire after recovery.
    ckpt_ordinal: u64,
}

/// The corruption applied to one stored checkpoint image. Produced by
/// [`FaultInjector::take_ckpt_corruption`]; the checkpoint store applies
/// it to the image bytes *after* sealing, so the damage is only
/// detectable through the envelope checksum at restore time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptCorruption {
    /// One bit flipped at a byte offset.
    BitFlip {
        /// Byte offset of the flipped bit (bit 0 of that byte).
        offset: u64,
    },
    /// Torn write: everything from `valid` onward is zeroed (the tail
    /// never reached stable storage).
    Torn {
        /// Bytes that survived the tear.
        valid: u64,
    },
    /// Truncation: the image is cut to `len` bytes.
    Truncated {
        /// Surviving length.
        len: u64,
    },
}

impl CkptCorruption {
    /// Applies the corruption to a stored image in place.
    pub fn apply(&self, image: &mut Vec<u8>) {
        match *self {
            CkptCorruption::BitFlip { offset } => {
                let len = image.len();
                if len > 0 {
                    image[(offset as usize).min(len - 1)] ^= 1;
                }
            }
            CkptCorruption::Torn { valid } => {
                let start = (valid as usize).min(image.len());
                for b in &mut image[start..] {
                    *b = 0;
                }
            }
            CkptCorruption::Truncated { len } => {
                image.truncate(len as usize);
            }
        }
    }
}

impl FaultInjector {
    /// Creates an injector for `plan`, seeding its RNG from `plan.seed`.
    pub fn new(plan: InjectionPlan) -> Self {
        let rng = DetRng::seed(plan.seed);
        let hard_rng = DetRng::seed(plan.seed ^ HARD_FAULT_SEED_SALT);
        FaultInjector {
            plan,
            rng,
            stats: InjectionStats::default(),
            storm_drains_left: 0,
            hard_rng,
            resets_fired: BTreeSet::new(),
            crashes_fired: BTreeSet::new(),
            drain_ordinal: 0,
            ecc_hits: 0,
            retires_fired: BTreeSet::new(),
            retire_ordinal: 0,
            ckpt_corruptions_fired: BTreeSet::new(),
            ckpt_ordinal: 0,
        }
    }

    /// Captures the transient slice of the injector for a checkpoint.
    pub fn transient_snapshot(&self) -> TransientInjectorState {
        TransientInjectorState {
            rng: self.rng.clone(),
            stats: self.stats,
            storm_drains_left: self.storm_drains_left,
        }
    }

    /// Restores the transient slice captured by
    /// [`Self::transient_snapshot`]. Hard-fault bookkeeping is left
    /// untouched (see [`TransientInjectorState`]).
    pub fn restore_transient(&mut self, state: &TransientInjectorState) {
        self.rng = state.rng.clone();
        self.stats = state.stats;
        self.storm_drains_left = state.storm_drains_left;
    }

    /// The plan in effect.
    pub fn plan(&self) -> &InjectionPlan {
        &self.plan
    }

    /// Snapshot of everything injected (and reacted to) so far.
    pub fn stats(&self) -> &InjectionStats {
        &self.stats
    }

    /// One Bernoulli roll. The zero-rate early-out is the module's
    /// zero-cost guarantee: disabled fault classes consume no randomness.
    fn roll(&mut self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        self.rng.unit_f64() < rate
    }

    /// Rolls a transient host→device DMA failure.
    pub fn roll_h2d_failure(&mut self) -> bool {
        let hit = self.roll(self.plan.dma_h2d_fail_rate);
        if hit {
            self.stats.dma_h2d_failures += 1;
        }
        hit
    }

    /// Rolls a transient device→host write-back DMA failure.
    pub fn roll_d2h_failure(&mut self) -> bool {
        let hit = self.roll(self.plan.dma_d2h_fail_rate);
        if hit {
            self.stats.dma_d2h_failures += 1;
        }
        hit
    }

    /// Rolls a transient host OOM for one eviction episode.
    pub fn roll_host_oom(&mut self) -> bool {
        let hit = self.roll(self.plan.host_oom_rate);
        if hit {
            self.stats.host_oom_events += 1;
        }
        hit
    }

    /// Rolls whether a correlation-table pair record is dropped.
    pub fn roll_corr_drop(&mut self) -> bool {
        let hit = self.roll(self.plan.corr_drop_rate);
        if hit {
            self.stats.corr_records_dropped += 1;
        }
        hit
    }

    /// Rolls a transient failure for one serving-request step.
    pub fn roll_request_failure(&mut self) -> bool {
        let hit = self.roll(self.plan.request_fail_rate);
        if hit {
            self.stats.request_failures += 1;
        }
        hit
    }

    /// Rolls a kernel-launch delay spike; returns the delay to charge.
    pub fn roll_launch_delay(&mut self) -> Option<Ns> {
        if self.roll(self.plan.launch_delay_rate) {
            self.stats.launch_delays += 1;
            self.stats.launch_delay_time += self.plan.launch_delay;
            Some(self.plan.launch_delay)
        } else {
            None
        }
    }

    /// Fault-storm hook, called once per fault-buffer drain with the
    /// engine's configured demand batch. During a storm the effective
    /// batch shrinks (never below one entry), so resolving the same miss
    /// set takes more drains and pays more per-batch overhead — the
    /// fault-pipeline shape of a buffer-capacity collapse.
    pub fn effective_fault_batch(&mut self, base: usize) -> usize {
        if self.storm_drains_left == 0 && self.roll(self.plan.storm_rate) {
            self.stats.storms += 1;
            self.storm_drains_left = self.plan.storm_duration_drains.max(1);
        }
        if self.storm_drains_left > 0 {
            self.storm_drains_left -= 1;
            self.stats.storm_drains += 1;
            let frac = self.plan.storm_capacity_frac.clamp(0.0, 1.0);
            return ((base as f64 * frac) as usize).max(1);
        }
        base
    }

    /// Records one retry attempt and its backoff delay. Accumulation is
    /// saturating: a pathological retry storm pins the counters at their
    /// maxima instead of wrapping.
    pub fn note_retry(&mut self, backoff: Ns) {
        self.stats.migration_retries = self.stats.migration_retries.saturating_add(1);
        self.stats.backoff_time = self.stats.backoff_time.saturating_add(backoff);
    }

    /// Next backoff after a failed attempt: saturating doubling, capped
    /// at the plan's [`InjectionPlan::max_backoff`].
    pub fn next_backoff(&self, current: Ns) -> Ns {
        current.saturating_mul(2).min(self.plan.max_backoff)
    }

    /// Consumes a device reset scheduled for kernel-launch sequence
    /// number `seq`, if one is pending. Draws no randomness. Each
    /// scheduled reset fires exactly once per run: replaying `seq` after
    /// recovery does not re-fire it.
    pub fn take_scheduled_reset(&mut self, seq: u64) -> bool {
        if self.plan.device_reset_at.contains(&seq) && self.resets_fired.insert(seq) {
            return true;
        }
        false
    }

    /// Advances the drain ordinal and consumes a driver crash scheduled
    /// for it, if any. Called once at the top of every UM fault-buffer
    /// drain, *before* the driver mutates any state. Draws no
    /// randomness; the ordinal is never rewound, so a crash cannot
    /// re-fire while its own drain is replayed.
    pub fn take_scheduled_driver_crash(&mut self) -> bool {
        let ordinal = self.drain_ordinal;
        self.drain_ordinal = self.drain_ordinal.saturating_add(1);
        self.plan.driver_crash_at.contains(&ordinal) && self.crashes_fired.insert(ordinal)
    }

    /// Rolls an uncorrectable ECC hit for one fault-buffer drain over
    /// `num_blocks` distinct faulted blocks; returns the index of the
    /// victim block within the drained batch. Uses the dedicated
    /// hard-fault RNG, so the transient roll stream is untouched even
    /// when `ecc_rate > 0`.
    pub fn roll_ecc(&mut self, num_blocks: usize) -> Option<usize> {
        if self.plan.ecc_rate <= 0.0 || num_blocks == 0 {
            return None;
        }
        if self.plan.ecc_rate < 1.0 && self.hard_rng.unit_f64() >= self.plan.ecc_rate {
            return None;
        }
        let idx = self.hard_rng.below(num_blocks as u64);
        self.ecc_hits += 1;
        Some(idx as usize)
    }

    /// Uncorrectable ECC hits rolled over the run (never rewound).
    pub fn ecc_hits(&self) -> u64 {
        self.ecc_hits
    }

    /// Advances the retirement drain ordinal and consumes a page
    /// retirement scheduled for it, if any. Called once at the top of
    /// every UM fault-buffer drain, immediately before
    /// [`Self::take_scheduled_driver_crash`], so both schedules share
    /// one drain numbering. Draws no randomness; the ordinal is never
    /// rewound.
    pub fn take_scheduled_retirement(&mut self) -> bool {
        let ordinal = self.retire_ordinal;
        self.retire_ordinal = self.retire_ordinal.saturating_add(1);
        self.plan.retire_pages_at.contains(&ordinal) && self.retires_fired.insert(ordinal)
    }

    /// Rolls whether this drain's ECC error lands in a device page
    /// frame and retires it (wear). Hard-fault RNG stream; a zero rate
    /// draws nothing.
    pub fn roll_page_retirement(&mut self) -> bool {
        if self.plan.ecc_retire_rate <= 0.0 {
            return false;
        }
        self.plan.ecc_retire_rate >= 1.0 || self.hard_rng.unit_f64() < self.plan.ecc_retire_rate
    }

    /// Samples which usable device frame a sampled retirement lands on,
    /// as a rank in `[0, usable)`. Hard-fault RNG stream.
    pub fn roll_retired_frame(&mut self, usable: u64) -> u64 {
        if usable <= 1 {
            return 0;
        }
        self.hard_rng.below(usable)
    }

    /// Advances the checkpoint ordinal and decides whether the image of
    /// `len` bytes about to be stored is corrupted. Scheduled entries
    /// ([`InjectionPlan::ckpt_corrupt_at`]) fire exactly once and flip a
    /// bit mid-image without drawing randomness; sampled corruption
    /// draws its kind and position from the hard-fault stream. The
    /// ordinal is never rewound, so recovery cannot re-fire a schedule.
    pub fn take_ckpt_corruption(&mut self, len: u64) -> Option<CkptCorruption> {
        let ordinal = self.ckpt_ordinal;
        self.ckpt_ordinal = self.ckpt_ordinal.saturating_add(1);
        if self.plan.ckpt_corrupt_at.contains(&ordinal)
            && self.ckpt_corruptions_fired.insert(ordinal)
        {
            return Some(CkptCorruption::BitFlip { offset: len / 2 });
        }
        if self.plan.ckpt_corrupt_rate <= 0.0 || len == 0 {
            return None;
        }
        if self.plan.ckpt_corrupt_rate < 1.0
            && self.hard_rng.unit_f64() >= self.plan.ckpt_corrupt_rate
        {
            return None;
        }
        Some(match self.hard_rng.below(3) {
            0 => CkptCorruption::BitFlip {
                offset: self.hard_rng.below(len),
            },
            1 => CkptCorruption::Torn {
                valid: self.hard_rng.below(len),
            },
            _ => CkptCorruption::Truncated {
                len: self.hard_rng.below(len),
            },
        })
    }

    /// Records a prefetch migration abandoned after retry exhaustion.
    pub fn note_prefetch_abandoned(&mut self) {
        self.stats.prefetches_abandoned += 1;
    }

    /// Records `n` eviction victims chosen by the no-write-back fallback.
    pub fn note_writeback_fallbacks(&mut self, n: u64) {
        self.stats.writeback_fallbacks += n;
    }
}

/// Degradation level of the DeepUM prefetch watchdog.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DegradationState {
    /// Prefetching at full configured degree.
    #[default]
    Normal,
    /// Misprediction rate crossed the throttle threshold: prefetch
    /// degree halved.
    Throttled,
    /// Misprediction rate crossed the disable threshold: correlation
    /// prefetching off until the cooldown elapses.
    Disabled,
}

/// One watchdog state change, stamped with the kernel sequence number at
/// which it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogTransition {
    /// Kernel sequence number (per-run launch counter) of the change.
    pub kernel_seq: u64,
    /// State before.
    pub from: DegradationState,
    /// State after.
    pub to: DegradationState,
}

/// Backend-side health surface: graceful-degradation history reported by
/// a [`UmBackend`](https://docs.rs/deepum-gpu) implementation. The naive
/// UM baseline reports the default (nothing degraded).
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendHealth {
    /// Final watchdog state at end of run.
    pub watchdog_state: DegradationState,
    /// Every watchdog state change, in order.
    pub watchdog_transitions: Vec<WatchdogTransition>,
    /// Predicted-window entries dropped to the capacity bound
    /// (backpressure on the protection window).
    pub predicted_window_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_draws_no_randomness() {
        let mut inj = FaultInjector::new(InjectionPlan::default());
        // Exercise every roll; none may consume RNG state.
        assert!(!inj.roll_h2d_failure());
        assert!(!inj.roll_d2h_failure());
        assert!(!inj.roll_host_oom());
        assert!(!inj.roll_corr_drop());
        assert!(!inj.roll_request_failure());
        assert!(inj.roll_launch_delay().is_none());
        assert_eq!(inj.effective_fault_batch(256), 256);
        let mut pristine = DetRng::seed(0);
        assert_eq!(inj.rng.next_u64(), pristine.next_u64());
        assert_eq!(*inj.stats(), InjectionStats::default());
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = InjectionPlan {
            seed: 99,
            dma_h2d_fail_rate: 0.3,
            corr_drop_rate: 0.2,
            launch_delay_rate: 0.1,
            ..InjectionPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..256 {
            assert_eq!(a.roll_h2d_failure(), b.roll_h2d_failure());
            assert_eq!(a.roll_corr_drop(), b.roll_corr_drop());
            assert_eq!(a.roll_launch_delay(), b.roll_launch_delay());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn request_failure_rolls_count_and_gate_transients() {
        let plan = InjectionPlan {
            request_fail_rate: 1.0,
            ..InjectionPlan::default()
        };
        assert!(plan.has_transients());
        let mut inj = FaultInjector::new(plan);
        assert!(inj.roll_request_failure());
        assert!(inj.roll_request_failure());
        assert_eq!(inj.stats().request_failures, 2);
    }

    #[test]
    fn certain_rates_fire_without_drawing() {
        let plan = InjectionPlan {
            dma_h2d_fail_rate: 1.0,
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        assert!(inj.roll_h2d_failure());
        let mut pristine = DetRng::seed(0);
        assert_eq!(inj.rng.next_u64(), pristine.next_u64());
    }

    #[test]
    fn storm_shrinks_batches_for_its_duration() {
        let plan = InjectionPlan {
            storm_rate: 1.0,
            storm_capacity_frac: 0.25,
            storm_duration_drains: 3,
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        // Storm triggers on the first drain and covers three drains;
        // storm_rate == 1.0 immediately re-triggers afterwards.
        for _ in 0..3 {
            assert_eq!(inj.effective_fault_batch(256), 64);
        }
        assert_eq!(inj.stats().storms, 1);
        assert_eq!(inj.stats().storm_drains, 3);
    }

    #[test]
    fn storm_floor_is_one_entry() {
        let plan = InjectionPlan {
            storm_rate: 1.0,
            storm_capacity_frac: 0.0,
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.effective_fault_batch(256), 1);
    }

    #[test]
    fn stats_round_trip_through_serde() {
        let mut inj = FaultInjector::new(InjectionPlan {
            launch_delay_rate: 1.0,
            ..InjectionPlan::default()
        });
        inj.roll_launch_delay();
        inj.note_retry(Ns::from_micros(2));
        let v = serde::Serialize::to_value(inj.stats());
        let back: InjectionStats = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, *inj.stats());
    }

    #[test]
    fn plan_round_trips_through_serde() {
        let plan = InjectionPlan {
            seed: 5,
            storm_rate: 0.5,
            ..InjectionPlan::default()
        };
        let v = serde::Serialize::to_value(&plan);
        let back: InjectionPlan = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn backend_health_defaults_to_normal() {
        let h = BackendHealth::default();
        assert_eq!(h.watchdog_state, DegradationState::Normal);
        assert!(h.watchdog_transitions.is_empty());
    }

    #[test]
    fn hard_only_plan_is_not_empty_but_has_no_transients() {
        let plan = InjectionPlan {
            device_reset_at: vec![3],
            ..InjectionPlan::default()
        };
        assert!(!plan.is_empty());
        assert!(!plan.has_transients());
        assert!(plan.has_hard_faults());
        assert!(InjectionPlan::default().is_empty());
    }

    #[test]
    fn scheduled_hard_faults_draw_no_randomness() {
        let plan = InjectionPlan {
            seed: 11,
            device_reset_at: vec![0, 2],
            driver_crash_at: vec![1],
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        assert!(inj.take_scheduled_reset(0));
        assert!(!inj.take_scheduled_driver_crash()); // ordinal 0
        assert!(inj.take_scheduled_driver_crash()); // ordinal 1
        assert!(inj.roll_ecc(8).is_none()); // rate 0: no draw
        let mut pristine = DetRng::seed(11);
        assert_eq!(inj.rng.next_u64(), pristine.next_u64());
    }

    #[test]
    fn scheduled_resets_fire_exactly_once() {
        let plan = InjectionPlan {
            device_reset_at: vec![5],
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.take_scheduled_reset(4));
        assert!(inj.take_scheduled_reset(5));
        // Replaying the same launch after recovery must not re-fire.
        assert!(!inj.take_scheduled_reset(5));
    }

    #[test]
    fn drain_ordinal_survives_transient_restore() {
        let plan = InjectionPlan {
            driver_crash_at: vec![2],
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        let snap = inj.transient_snapshot();
        assert!(!inj.take_scheduled_driver_crash()); // 0
        assert!(!inj.take_scheduled_driver_crash()); // 1
        assert!(inj.take_scheduled_driver_crash()); // 2 fires
        inj.restore_transient(&snap);
        // Ordinal and fired set are not rewound: no re-fire on replay.
        assert!(!inj.take_scheduled_driver_crash()); // 3
        assert!(!inj.take_scheduled_driver_crash()); // 4
    }

    #[test]
    fn ecc_uses_dedicated_rng_stream() {
        let base = InjectionPlan {
            seed: 9,
            dma_h2d_fail_rate: 0.5,
            ..InjectionPlan::default()
        };
        let with_ecc = InjectionPlan {
            ecc_rate: 1.0,
            ..base.clone()
        };
        let mut a = FaultInjector::new(base);
        let mut b = FaultInjector::new(with_ecc);
        for _ in 0..64 {
            let victim = b.roll_ecc(16);
            assert!(matches!(victim, Some(i) if i < 16));
            // The transient stream must be identical with and without ECC.
            assert_eq!(a.roll_h2d_failure(), b.roll_h2d_failure());
        }
    }

    #[test]
    fn transient_restore_replays_identical_rolls() {
        let plan = InjectionPlan {
            seed: 21,
            dma_h2d_fail_rate: 0.4,
            storm_rate: 0.2,
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        for _ in 0..10 {
            inj.roll_h2d_failure();
            inj.effective_fault_batch(64);
        }
        let snap = inj.transient_snapshot();
        let first: Vec<(bool, usize)> = (0..32)
            .map(|_| (inj.roll_h2d_failure(), inj.effective_fault_batch(64)))
            .collect();
        let stats_after = *inj.stats();
        inj.restore_transient(&snap);
        let replay: Vec<(bool, usize)> = (0..32)
            .map(|_| (inj.roll_h2d_failure(), inj.effective_fault_batch(64)))
            .collect();
        assert_eq!(first, replay);
        assert_eq!(*inj.stats(), stats_after);
    }

    #[test]
    fn backoff_doubles_and_caps_at_plan_max() {
        let plan = InjectionPlan {
            backoff_base: Ns::from_micros(2),
            max_backoff: Ns::from_micros(5),
            ..InjectionPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let b1 = inj.next_backoff(Ns::from_micros(2));
        assert_eq!(b1, Ns::from_micros(4));
        let b2 = inj.next_backoff(b1);
        assert_eq!(b2, Ns::from_micros(5)); // capped
        assert_eq!(inj.next_backoff(b2), Ns::from_micros(5));
    }

    #[test]
    fn backoff_saturates_at_the_overflow_boundary() {
        let plan = InjectionPlan {
            max_backoff: Ns::MAX,
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        // Doubling from just below the top must saturate, not wrap.
        let near_max = Ns::from_nanos(u64::MAX - 1);
        assert_eq!(inj.next_backoff(near_max), Ns::MAX);
        assert_eq!(inj.next_backoff(Ns::MAX), Ns::MAX);
        // Stats accumulation saturates too.
        inj.note_retry(Ns::MAX);
        inj.note_retry(Ns::MAX);
        assert_eq!(inj.stats().backoff_time, Ns::MAX);
        assert_eq!(inj.stats().migration_retries, 2);
    }

    #[test]
    fn extended_plan_round_trips_through_serde() {
        let plan = InjectionPlan {
            seed: 5,
            device_reset_at: vec![1, 9],
            driver_crash_at: vec![4],
            ecc_rate: 0.25,
            max_backoff: Ns::from_micros(500),
            ecc_retire_rate: 0.125,
            retire_pages_at: vec![2, 7],
            ckpt_corrupt_rate: 0.5,
            ckpt_corrupt_at: vec![1],
            ..InjectionPlan::default()
        };
        let v = serde::Serialize::to_value(&plan);
        let back: InjectionPlan = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn wear_only_plan_is_hard_but_not_transient() {
        let plan = InjectionPlan {
            retire_pages_at: vec![3],
            ..InjectionPlan::default()
        };
        assert!(plan.has_wear());
        assert!(plan.has_hard_faults());
        assert!(!plan.has_transients());
        assert!(!plan.is_empty());
        let sampled = InjectionPlan {
            ecc_retire_rate: 0.01,
            ..InjectionPlan::default()
        };
        assert!(sampled.has_wear() && !sampled.is_empty());
        let corrupting = InjectionPlan {
            ckpt_corrupt_at: vec![0],
            ..InjectionPlan::default()
        };
        assert!(corrupting.has_ckpt_corruption() && corrupting.has_hard_faults());
    }

    #[test]
    fn scheduled_retirement_fires_once_and_draws_nothing() {
        let plan = InjectionPlan {
            seed: 13,
            retire_pages_at: vec![1],
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        assert!(!inj.take_scheduled_retirement()); // ordinal 0
        assert!(inj.take_scheduled_retirement()); // ordinal 1 fires
        assert!(!inj.take_scheduled_retirement()); // ordinal 2
                                                   // A zero retire rate draws nothing either.
        assert!(!inj.roll_page_retirement());
        let mut pristine = DetRng::seed(13);
        assert_eq!(inj.rng.next_u64(), pristine.next_u64());
        let mut hard_pristine = DetRng::seed(13 ^ HARD_FAULT_SEED_SALT);
        assert_eq!(inj.hard_rng.next_u64(), hard_pristine.next_u64());
    }

    #[test]
    fn retirement_rolls_use_the_hard_stream_only() {
        let base = InjectionPlan {
            seed: 9,
            dma_h2d_fail_rate: 0.5,
            ..InjectionPlan::default()
        };
        let wearing = InjectionPlan {
            ecc_retire_rate: 1.0,
            ..base.clone()
        };
        let mut a = FaultInjector::new(base);
        let mut b = FaultInjector::new(wearing);
        for _ in 0..64 {
            assert!(b.roll_page_retirement());
            assert!(b.roll_retired_frame(16) < 16);
            // The transient stream must be untouched by wear rolls.
            assert_eq!(a.roll_h2d_failure(), b.roll_h2d_failure());
        }
    }

    #[test]
    fn scheduled_ckpt_corruption_fires_once_mid_image() {
        let plan = InjectionPlan {
            ckpt_corrupt_at: vec![1],
            ..InjectionPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.take_ckpt_corruption(100), None); // ordinal 0
        assert_eq!(
            inj.take_ckpt_corruption(100),
            Some(CkptCorruption::BitFlip { offset: 50 })
        );
        assert_eq!(inj.take_ckpt_corruption(100), None); // consumed
        let mut pristine = DetRng::seed(HARD_FAULT_SEED_SALT);
        assert_eq!(inj.hard_rng.next_u64(), pristine.next_u64());
    }

    #[test]
    fn sampled_ckpt_corruption_is_deterministic() {
        let plan = InjectionPlan {
            seed: 4,
            ckpt_corrupt_rate: 1.0,
            ..InjectionPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..32 {
            let ca = a.take_ckpt_corruption(4096);
            assert!(ca.is_some());
            assert_eq!(ca, b.take_ckpt_corruption(4096));
        }
    }

    #[test]
    fn ckpt_corruption_applies_within_bounds() {
        let mut img = vec![0xAAu8; 8];
        CkptCorruption::BitFlip { offset: 3 }.apply(&mut img);
        assert_eq!(img[3], 0xAB);
        CkptCorruption::BitFlip { offset: 999 }.apply(&mut img);
        assert_eq!(img[7], 0xAB); // clamped to the last byte
        CkptCorruption::Torn { valid: 5 }.apply(&mut img);
        assert_eq!(&img[5..], &[0, 0, 0]);
        assert_eq!(img.len(), 8);
        CkptCorruption::Truncated { len: 2 }.apply(&mut img);
        assert_eq!(img.len(), 2);
        let mut empty: Vec<u8> = Vec::new();
        CkptCorruption::BitFlip { offset: 0 }.apply(&mut empty);
        CkptCorruption::Torn { valid: 4 }.apply(&mut empty);
        CkptCorruption::Truncated { len: 4 }.apply(&mut empty);
        assert!(empty.is_empty());
    }
}
