//! Deterministic random number generation.
//!
//! The only stochastic element of the reproduction is workload-side:
//! DLRM's data-dependent embedding lookups and the randomized-search
//! baseline (SwapAdvisor). Both draw from [`DetRng`], a small seeded
//! generator, so that a given seed reproduces the exact same fault trace
//! and schedule on every run.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded, reproducible random number generator.
///
/// Thin wrapper around [`rand::rngs::StdRng`] that fixes the seeding
/// discipline (explicit `u64` seeds only — no OS entropy) and offers the
/// couple of draw shapes the workloads need.
///
/// # Example
///
/// ```
/// use deepum_sim::rng::DetRng;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: StdRng,
}

impl DetRng {
    /// Creates a generator from an explicit seed.
    pub fn seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each model /
    /// iteration its own stream without coupling draw counts.
    pub fn fork(&mut self) -> Self {
        Self::seed(self.inner.gen())
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// A draw from a truncated power-law over `[0, n)`, approximating the
    /// skewed popularity of recommendation-model embedding rows: small
    /// indices are hot, the tail is cold but non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf_like(&mut self, n: u64, skew: f64) -> u64 {
        assert!(n > 0, "n must be positive");
        // Inverse-CDF sampling of p(x) ~ (x+1)^-skew over [0, n).
        let u = self.unit_f64();
        let exp = 1.0 - skew;
        let idx = if exp.abs() < 1e-9 {
            ((n as f64).powf(u) - 1.0).max(0.0)
        } else {
            let max = (n as f64).powf(exp);
            (u * (max - 1.0) + 1.0).powf(1.0 / exp) - 1.0
        };
        (idx as u64).min(n - 1)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn zipf_like_is_skewed() {
        let mut r = DetRng::seed(11);
        let n = 10_000u64;
        let draws = 20_000;
        let hot = (0..draws)
            .filter(|_| r.zipf_like(n, 1.2) < n / 100)
            .count();
        // With skew, far more than 1% of draws land in the hottest 1%.
        assert!(hot > draws / 20, "hot draws: {hot}");
    }

    #[test]
    fn zipf_like_stays_in_range() {
        let mut r = DetRng::seed(13);
        for _ in 0..1000 {
            assert!(r.zipf_like(100, 1.1) < 100);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = DetRng::seed(9);
        let mut child = parent.fork();
        // Child keeps producing values even if parent advances.
        let c1 = child.next_u64();
        parent.next_u64();
        let mut parent2 = DetRng::seed(9);
        let mut child2 = parent2.fork();
        assert_eq!(c1, child2.next_u64());
    }
}
