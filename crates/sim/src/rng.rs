//! Deterministic random number generation.
//!
//! The only stochastic element of the reproduction is workload-side:
//! DLRM's data-dependent embedding lookups, the randomized-search
//! baseline (SwapAdvisor), and the fault-injection layer. All draw from
//! [`DetRng`], a small seeded generator, so that a given seed reproduces
//! the exact same fault trace and schedule on every run.

/// A seeded, reproducible random number generator.
///
/// Self-contained xoshiro256++ core with SplitMix64 seed expansion — no
/// OS entropy, no external dependency — exposing the couple of draw
/// shapes the workloads need. The algorithm choice is part of the
/// repo's determinism contract: reports cached under a given seed stay
/// valid across toolchain updates because the stream is fixed here, not
/// inherited from a library.
///
/// # Example
///
/// ```
/// use deepum_sim::rng::DetRng;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand one `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from an explicit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; used to give each model /
    /// iteration its own stream without coupling draw counts.
    pub fn fork(&mut self) -> Self {
        Self::seed(self.next_u64())
    }

    /// Raw generator state, for binary checkpoint codecs.
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuilds a generator from [`Self::state`], resuming its stream
    /// exactly where the snapshot left it.
    pub fn from_state(state: [u64; 4]) -> Self {
        Self { state }
    }

    /// Next raw 64-bit draw (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        self.state = [n0, n1, n2, n3.rotate_left(45)];
        result
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Debiased multiply-shift (Lemire): retry on the short tail.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound || bound.is_power_of_two() {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform draw in `[0.0, 1.0)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A draw from a truncated power-law over `[0, n)`, approximating the
    /// skewed popularity of recommendation-model embedding rows: small
    /// indices are hot, the tail is cold but non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf_like(&mut self, n: u64, skew: f64) -> u64 {
        assert!(n > 0, "n must be positive");
        // Inverse-CDF sampling of p(x) ~ (x+1)^-skew over [0, n).
        let u = self.unit_f64();
        let exp = 1.0 - skew;
        let idx = if exp.abs() < 1e-9 {
            ((n as f64).powf(u) - 1.0).max(0.0)
        } else {
            let max = (n as f64).powf(exp);
            (u * (max - 1.0) + 1.0).powf(1.0 / exp) - 1.0
        };
        (idx as u64).min(n - 1)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut r = DetRng::seed(21);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn zipf_like_is_skewed() {
        let mut r = DetRng::seed(11);
        let n = 10_000u64;
        let draws = 20_000;
        let hot = (0..draws).filter(|_| r.zipf_like(n, 1.2) < n / 100).count();
        // With skew, far more than 1% of draws land in the hottest 1%.
        assert!(hot > draws / 20, "hot draws: {hot}");
    }

    #[test]
    fn zipf_like_stays_in_range() {
        let mut r = DetRng::seed(13);
        for _ in 0..1000 {
            assert!(r.zipf_like(100, 1.1) < 100);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = DetRng::seed(9);
        let mut child = parent.fork();
        // Child keeps producing values even if parent advances.
        let c1 = child.next_u64();
        parent.next_u64();
        let mut parent2 = DetRng::seed(9);
        let mut child2 = parent2.fork();
        assert_eq!(c1, child2.next_u64());
    }

    #[test]
    fn stream_is_pinned() {
        // The exact stream is part of the determinism contract; cached
        // reports depend on it. If this changes, bump the bench cache
        // VERSION.
        let mut r = DetRng::seed(42);
        assert_eq!(r.next_u64(), 0xd076_4d4f_4476_689f);
    }
}
