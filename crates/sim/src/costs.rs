//! Calibrated virtual-time cost model for the simulated platform.
//!
//! The paper's evaluation machine (Table 1) is a dual-socket EPYC host with
//! an NVIDIA Tesla V100 PCIe card (32 GB for Section 6.2, 16 GB for the
//! TensorFlow-based comparison in Section 6.4). The constants below are
//! derived from that platform and from public UM measurements:
//!
//! * PCIe 3.0 ×16 sustains ~12 GB/s effective for page migration traffic.
//! * Handling one GPU page-fault *batch* (interrupt, fault-buffer fetch,
//!   preprocessing, replay) costs tens of microseconds, which is exactly
//!   the overhead DeepUM's prefetching is designed to hide.
//! * Eviction work sits on the fault-handling critical path (Section 5.1),
//!   so evicted bytes are charged inside the handler unless pre-eviction
//!   moved them off-path.
//!
//! Absolute seconds are not the reproduction target (the substrate is a
//! simulator, not the authors' testbed); the model is calibrated so the
//! *ratios* the paper reports — UM vs DeepUM vs Ideal — fall in the
//! observed ranges.

use serde::{Deserialize, Serialize};

use crate::time::Ns;

/// Latency and bandwidth constants of the simulated GPU + host platform.
///
/// Construct via a preset such as [`CostModel::v100_32gb`] and tweak fields
/// through the builder-style `with_*` methods where an experiment needs a
/// variation.
///
/// # Example
///
/// ```
/// use deepum_sim::costs::CostModel;
///
/// let costs = CostModel::v100_16gb().with_pcie_bandwidth(16.0e9);
/// assert_eq!(costs.device_memory_bytes, 16 * (1 << 30));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// GPU device (global) memory capacity in bytes.
    pub device_memory_bytes: u64,
    /// Host (CPU) memory capacity in bytes, the UM backing store.
    pub host_memory_bytes: u64,
    /// Effective PCIe bandwidth for page migration, bytes per second.
    pub pcie_bandwidth_bps: f64,
    /// Fixed per-transfer PCIe/DMA setup latency.
    pub pcie_latency: Ns,
    /// Fixed cost of one fault-handler invocation: interrupt delivery,
    /// fault-buffer fetch, and the replay signal (steps 1 and 9 of Fig. 3).
    pub fault_batch_overhead: Ns,
    /// Per-fault-entry preprocessing: deduplication and UM-block grouping
    /// (step 2 of Fig. 3).
    pub fault_entry_cost: Ns,
    /// Per-faulted-UM-block bookkeeping in the handler loop (steps 3-8).
    pub fault_block_overhead: Ns,
    /// Per-page device memory population (step 5).
    pub populate_page_cost: Ns,
    /// Per-page GPU page-table mapping (step 7).
    pub map_page_cost: Ns,
    /// Per-page unmap + victim bookkeeping during eviction (step 4),
    /// excluding the PCIe write-back which is charged via
    /// [`CostModel::transfer_time`].
    pub evict_page_cost: Ns,
    /// Driver-side cost to process a single prefetch command off the queue.
    pub prefetch_cmd_cost: Ns,
    /// Cost for the correlator thread to record one fault in the tables.
    pub table_update_cost: Ns,
    /// Cost of the runtime's kernel-launch interception: hashing the kernel
    /// name + arguments and the ioctl callback into the driver.
    pub launch_intercept_cost: Ns,
    /// Extra stall charged per fault batch for the faulting SM's locked TLB
    /// (no new translations until all its faults resolve).
    pub tlb_lock_stall: Ns,
}

impl CostModel {
    /// Preset for the paper's primary device: Tesla V100 PCIe 32 GB on a
    /// 512 GB host (Table 1, Sections 6.2-6.3).
    pub fn v100_32gb() -> Self {
        Self {
            device_memory_bytes: 32 * (1 << 30),
            host_memory_bytes: 512 * (1 << 30),
            pcie_bandwidth_bps: 12.0e9,
            pcie_latency: Ns::from_micros(8),
            fault_batch_overhead: Ns::from_micros(20),
            fault_entry_cost: Ns::from_nanos(150),
            fault_block_overhead: Ns::from_micros(4),
            populate_page_cost: Ns::from_nanos(120),
            map_page_cost: Ns::from_nanos(90),
            evict_page_cost: Ns::from_nanos(140),
            prefetch_cmd_cost: Ns::from_nanos(600),
            table_update_cost: Ns::from_nanos(250),
            launch_intercept_cost: Ns::from_micros(2),
            tlb_lock_stall: Ns::from_micros(10),
        }
    }

    /// Preset for the TensorFlow-comparison device: Tesla V100 PCIe 16 GB
    /// (Section 6.4); DeepUM's host memory is capped at 128 GB there to
    /// match Ren et al.'s configuration.
    pub fn v100_16gb() -> Self {
        Self {
            device_memory_bytes: 16 * (1 << 30),
            host_memory_bytes: 128 * (1 << 30),
            ..Self::v100_32gb()
        }
    }

    /// Returns the model with a different device memory capacity.
    pub fn with_device_memory(mut self, bytes: u64) -> Self {
        self.device_memory_bytes = bytes;
        self
    }

    /// Returns the model with a different host memory capacity.
    pub fn with_host_memory(mut self, bytes: u64) -> Self {
        self.host_memory_bytes = bytes;
        self
    }

    /// Returns the model with a different effective PCIe bandwidth.
    pub fn with_pcie_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.pcie_bandwidth_bps = bytes_per_sec;
        self
    }

    /// Time to move `bytes` once over PCIe, including setup latency.
    ///
    /// Zero-byte transfers are free: the driver never issues them.
    pub fn transfer_time(&self, bytes: u64) -> Ns {
        if bytes == 0 {
            return Ns::ZERO;
        }
        self.pcie_latency + Ns::from_secs_f64(bytes as f64 / self.pcie_bandwidth_bps)
    }

    /// Time to stream `bytes` over PCIe as part of an already-running batch
    /// (no per-transfer setup latency). Used when the migration engine
    /// coalesces consecutive blocks.
    pub fn streaming_transfer_time(&self, bytes: u64) -> Ns {
        Ns::from_secs_f64(bytes as f64 / self.pcie_bandwidth_bps)
    }
}

impl Default for CostModel {
    /// Defaults to the paper's primary platform, [`CostModel::v100_32gb`].
    fn default() -> Self {
        Self::v100_32gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_memory() {
        let a = CostModel::v100_32gb();
        let b = CostModel::v100_16gb();
        assert_eq!(a.device_memory_bytes, 2 * b.device_memory_bytes);
        assert!(b.host_memory_bytes < a.host_memory_bytes);
        assert_eq!(a.pcie_bandwidth_bps, b.pcie_bandwidth_bps);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let c = CostModel::v100_32gb();
        let one = c.transfer_time(1 << 20);
        let two = c.transfer_time(2 << 20);
        assert!(two > one);
        // Latency is charged once per transfer.
        assert!(two - c.pcie_latency > (one - c.pcie_latency) * 2 - Ns::from_nanos(2));
    }

    #[test]
    fn zero_transfer_is_free() {
        let c = CostModel::v100_32gb();
        assert_eq!(c.transfer_time(0), Ns::ZERO);
        assert_eq!(c.streaming_transfer_time(0), Ns::ZERO);
    }

    #[test]
    fn streaming_skips_latency() {
        let c = CostModel::v100_32gb();
        let bytes = 4 << 20;
        assert_eq!(
            c.transfer_time(bytes),
            c.pcie_latency + c.streaming_transfer_time(bytes)
        );
    }

    #[test]
    fn builder_overrides() {
        let c = CostModel::v100_32gb()
            .with_device_memory(1 << 30)
            .with_host_memory(2 << 30)
            .with_pcie_bandwidth(1.0e9);
        assert_eq!(c.device_memory_bytes, 1 << 30);
        assert_eq!(c.host_memory_bytes, 2 << 30);
        // 1 GiB at 1 GB/s is just over a second.
        assert!(c.transfer_time(1 << 30) > Ns::from_secs(1));
    }
}
