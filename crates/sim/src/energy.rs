//! Full-system energy model.
//!
//! The paper measures whole-system energy (CPUs, GPU, DIMMs, motherboard)
//! with a Hioki 3334 power meter and reports energy *ratios* over the naive
//! UM baseline (Figures 9(c) and 11(b)). We reproduce that with a
//! piecewise-constant power model: at any virtual instant the system is in
//! one [`PowerState`], and energy is the integral of state power over
//! virtual time. Because every strategy runs the same computation, the
//! ratio is dominated by runtime — exactly the paper's observation that
//! "the amount of energy consumption is highly related to the speedup".

use serde::{Deserialize, Serialize};

use crate::time::Ns;

/// Coarse activity state of the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Host busy, GPU idle (e.g. waiting on fault handling bookkeeping).
    Idle,
    /// GPU executing kernel code, no PCIe traffic.
    Compute,
    /// PCIe migration traffic with the GPU stalled (on-demand faults).
    Transfer,
    /// Kernel execution overlapped with PCIe traffic (prefetching).
    ComputeTransfer,
}

/// Whole-system power draw (watts) per [`PowerState`].
///
/// Defaults approximate the paper's dual-EPYC + V100 node: ~320 W idle,
/// V100 TDP 250 W under load, and a modest increment for PCIe/DMA traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Watts drawn in [`PowerState::Idle`].
    pub idle_w: f64,
    /// Watts drawn in [`PowerState::Compute`].
    pub compute_w: f64,
    /// Watts drawn in [`PowerState::Transfer`].
    pub transfer_w: f64,
    /// Watts drawn in [`PowerState::ComputeTransfer`].
    pub compute_transfer_w: f64,
}

impl PowerModel {
    /// Power draw for `state`, in watts.
    pub fn watts(&self, state: PowerState) -> f64 {
        match state {
            PowerState::Idle => self.idle_w,
            PowerState::Compute => self.compute_w,
            PowerState::Transfer => self.transfer_w,
            PowerState::ComputeTransfer => self.compute_transfer_w,
        }
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            idle_w: 320.0,
            compute_w: 560.0,
            transfer_w: 380.0,
            compute_transfer_w: 600.0,
        }
    }
}

/// Accumulates joules over virtual time.
///
/// # Example
///
/// ```
/// use deepum_sim::energy::{EnergyMeter, PowerState};
/// use deepum_sim::time::Ns;
///
/// let mut meter = EnergyMeter::new();
/// meter.accumulate(PowerState::Compute, Ns::from_secs(2));
/// meter.accumulate(PowerState::Idle, Ns::from_secs(1));
/// assert!(meter.joules() > 0.0);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    model: PowerModel,
    joules: f64,
    time_by_state: [NsAccum; 4],
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct NsAccum(u64);

impl EnergyMeter {
    /// Creates a meter with the default [`PowerModel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a meter with a custom power model.
    pub fn with_model(model: PowerModel) -> Self {
        Self {
            model,
            ..Self::default()
        }
    }

    /// Charges `duration` of time spent in `state`.
    pub fn accumulate(&mut self, state: PowerState, duration: Ns) {
        self.joules += self.model.watts(state) * duration.as_secs_f64();
        self.time_by_state[state_index(state)].0 += duration.as_nanos();
    }

    /// Total accumulated energy, in joules.
    pub fn joules(&self) -> f64 {
        self.joules
    }

    /// Total virtual time charged in `state`.
    pub fn time_in(&self, state: PowerState) -> Ns {
        Ns::from_nanos(self.time_by_state[state_index(state)].0)
    }

    /// Total virtual time charged across all states.
    pub fn total_time(&self) -> Ns {
        Ns::from_nanos(self.time_by_state.iter().map(|a| a.0).sum())
    }

    /// Raw accumulator state `(joules as IEEE-754 bits, per-state
    /// nanosecond totals)`, for binary checkpoint codecs. The power
    /// model is run configuration, not state, and is excluded.
    pub fn accum_state(&self) -> (u64, [u64; 4]) {
        (
            self.joules.to_bits(),
            [
                self.time_by_state[0].0,
                self.time_by_state[1].0,
                self.time_by_state[2].0,
                self.time_by_state[3].0,
            ],
        )
    }

    /// Restores the accumulators captured by [`Self::accum_state`],
    /// keeping the meter's configured power model.
    pub fn restore_accum(&mut self, joules_bits: u64, times: [u64; 4]) {
        self.joules = f64::from_bits(joules_bits);
        self.time_by_state = [
            NsAccum(times[0]),
            NsAccum(times[1]),
            NsAccum(times[2]),
            NsAccum(times[3]),
        ];
    }
}

fn state_index(state: PowerState) -> usize {
    match state {
        PowerState::Idle => 0,
        PowerState::Compute => 1,
        PowerState::Transfer => 2,
        PowerState::ComputeTransfer => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        let mut m = EnergyMeter::new();
        m.accumulate(PowerState::Compute, Ns::from_secs(10));
        let expected = PowerModel::default().compute_w * 10.0;
        assert!((m.joules() - expected).abs() < 1e-6);
    }

    #[test]
    fn time_bookkeeping_per_state() {
        let mut m = EnergyMeter::new();
        m.accumulate(PowerState::Idle, Ns::from_secs(1));
        m.accumulate(PowerState::Transfer, Ns::from_secs(2));
        m.accumulate(PowerState::Transfer, Ns::from_secs(3));
        assert_eq!(m.time_in(PowerState::Idle), Ns::from_secs(1));
        assert_eq!(m.time_in(PowerState::Transfer), Ns::from_secs(5));
        assert_eq!(m.time_in(PowerState::Compute), Ns::ZERO);
        assert_eq!(m.total_time(), Ns::from_secs(6));
    }

    #[test]
    fn compute_draws_more_than_idle() {
        let model = PowerModel::default();
        assert!(model.watts(PowerState::Compute) > model.watts(PowerState::Idle));
        assert!(model.watts(PowerState::ComputeTransfer) >= model.watts(PowerState::Compute));
    }

    #[test]
    fn custom_model_is_used() {
        let mut m = EnergyMeter::with_model(PowerModel {
            idle_w: 1.0,
            compute_w: 2.0,
            transfer_w: 3.0,
            compute_transfer_w: 4.0,
        });
        m.accumulate(PowerState::Idle, Ns::from_secs(1));
        assert!((m.joules() - 1.0).abs() < 1e-9);
    }
}
