//! Event counters shared by every layer of the simulation.
//!
//! The paper's key quantitative instrument is the *number of GPU page
//! faults per training iteration* (Table 5), because the V100 exposes no
//! prefetch-accuracy counter. `Counters` records that and the surrounding
//! traffic (migrations, evictions, invalidations, prefetches) so each
//! experiment can report exactly what the paper reports.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Passive bag of monotonically increasing event counters.
///
/// Fields are public on purpose: this is compound, passive data written by
/// the simulator's hot paths and read by the reporting layer.
///
/// # Example
///
/// ```
/// use deepum_sim::metrics::Counters;
///
/// let mut a = Counters::default();
/// a.gpu_page_faults += 10;
/// let mut b = Counters::default();
/// b.gpu_page_faults += 5;
/// a.merge(&b);
/// assert_eq!(a.gpu_page_faults, 15);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// GPU page faults observed by the fault handler (post fault-buffer,
    /// pre deduplication) — the quantity in Table 5.
    pub gpu_page_faults: u64,
    /// Fault-handler invocations (one per fault-buffer drain).
    pub fault_batches: u64,
    /// Faulted UM blocks processed by the handler loop (after grouping).
    pub faulted_blocks: u64,
    /// Pages migrated host → device on demand (fault path).
    pub pages_faulted_in: u64,
    /// Pages migrated host → device by the prefetcher.
    pub pages_prefetched: u64,
    /// Prefetch commands consumed by the migration thread.
    pub prefetch_commands: u64,
    /// Prefetched blocks later touched by the GPU before eviction.
    pub prefetch_hits: u64,
    /// Prefetched blocks evicted (or invalidated) untouched.
    pub prefetch_wasted: u64,
    /// Prefetch commands dropped because no device space was free and
    /// pre-eviction was disabled.
    pub prefetch_dropped: u64,
    /// Pages evicted device → host on the fault-handling critical path.
    pub pages_evicted_demand: u64,
    /// Pages evicted device → host by DeepUM's pre-eviction (off-path).
    pub pages_preevicted: u64,
    /// Pages dropped without write-back because their PT block was
    /// inactive (Section 5.2).
    pub pages_invalidated: u64,
    /// Bytes moved host → device.
    pub bytes_h2d: u64,
    /// Bytes moved device → host.
    pub bytes_d2h: u64,
    /// Kernel launches intercepted by the runtime.
    pub kernels_launched: u64,
    /// Next-kernel predictions made from the execution-ID table.
    pub exec_predictions: u64,
    /// Next-kernel predictions that turned out wrong.
    pub exec_mispredictions: u64,
    /// Chaining walks started by the prefetching thread.
    pub chain_walks: u64,
    /// UM-block correlation-table lookups.
    pub block_table_lookups: u64,
    /// UM-block correlation-table insertions/updates.
    pub block_table_updates: u64,
}

impl Counters {
    /// Creates a zeroed counter bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        let Counters {
            gpu_page_faults,
            fault_batches,
            faulted_blocks,
            pages_faulted_in,
            pages_prefetched,
            prefetch_commands,
            prefetch_hits,
            prefetch_wasted,
            prefetch_dropped,
            pages_evicted_demand,
            pages_preevicted,
            pages_invalidated,
            bytes_h2d,
            bytes_d2h,
            kernels_launched,
            exec_predictions,
            exec_mispredictions,
            chain_walks,
            block_table_lookups,
            block_table_updates,
        } = other;
        self.gpu_page_faults += gpu_page_faults;
        self.fault_batches += fault_batches;
        self.faulted_blocks += faulted_blocks;
        self.pages_faulted_in += pages_faulted_in;
        self.pages_prefetched += pages_prefetched;
        self.prefetch_commands += prefetch_commands;
        self.prefetch_hits += prefetch_hits;
        self.prefetch_wasted += prefetch_wasted;
        self.prefetch_dropped += prefetch_dropped;
        self.pages_evicted_demand += pages_evicted_demand;
        self.pages_preevicted += pages_preevicted;
        self.pages_invalidated += pages_invalidated;
        self.bytes_h2d += bytes_h2d;
        self.bytes_d2h += bytes_d2h;
        self.kernels_launched += kernels_launched;
        self.exec_predictions += exec_predictions;
        self.exec_mispredictions += exec_mispredictions;
        self.chain_walks += chain_walks;
        self.block_table_lookups += block_table_lookups;
        self.block_table_updates += block_table_updates;
    }

    /// Difference `self - earlier`, for per-interval (e.g. per-iteration)
    /// reporting.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any counter of `earlier` exceeds the
    /// corresponding counter of `self` (counters are monotonic).
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        Counters {
            gpu_page_faults: self.gpu_page_faults - earlier.gpu_page_faults,
            fault_batches: self.fault_batches - earlier.fault_batches,
            faulted_blocks: self.faulted_blocks - earlier.faulted_blocks,
            pages_faulted_in: self.pages_faulted_in - earlier.pages_faulted_in,
            pages_prefetched: self.pages_prefetched - earlier.pages_prefetched,
            prefetch_commands: self.prefetch_commands - earlier.prefetch_commands,
            prefetch_hits: self.prefetch_hits - earlier.prefetch_hits,
            prefetch_wasted: self.prefetch_wasted - earlier.prefetch_wasted,
            prefetch_dropped: self.prefetch_dropped - earlier.prefetch_dropped,
            pages_evicted_demand: self.pages_evicted_demand - earlier.pages_evicted_demand,
            pages_preevicted: self.pages_preevicted - earlier.pages_preevicted,
            pages_invalidated: self.pages_invalidated - earlier.pages_invalidated,
            bytes_h2d: self.bytes_h2d - earlier.bytes_h2d,
            bytes_d2h: self.bytes_d2h - earlier.bytes_d2h,
            kernels_launched: self.kernels_launched - earlier.kernels_launched,
            exec_predictions: self.exec_predictions - earlier.exec_predictions,
            exec_mispredictions: self.exec_mispredictions - earlier.exec_mispredictions,
            chain_walks: self.chain_walks - earlier.chain_walks,
            block_table_lookups: self.block_table_lookups - earlier.block_table_lookups,
            block_table_updates: self.block_table_updates - earlier.block_table_updates,
        }
    }

    /// Total pages moved host → device (fault path + prefetch path).
    pub fn pages_migrated_in(&self) -> u64 {
        self.pages_faulted_in + self.pages_prefetched
    }

    /// Total pages moved or dropped device → host.
    pub fn pages_evicted(&self) -> u64 {
        self.pages_evicted_demand + self.pages_preevicted + self.pages_invalidated
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "gpu_page_faults:      {:>14}", self.gpu_page_faults)?;
        writeln!(f, "fault_batches:        {:>14}", self.fault_batches)?;
        writeln!(f, "pages_faulted_in:     {:>14}", self.pages_faulted_in)?;
        writeln!(f, "pages_prefetched:     {:>14}", self.pages_prefetched)?;
        writeln!(f, "prefetch_hits:        {:>14}", self.prefetch_hits)?;
        writeln!(f, "prefetch_wasted:      {:>14}", self.prefetch_wasted)?;
        writeln!(f, "pages_evicted_demand: {:>14}", self.pages_evicted_demand)?;
        writeln!(f, "pages_preevicted:     {:>14}", self.pages_preevicted)?;
        writeln!(f, "pages_invalidated:    {:>14}", self.pages_invalidated)?;
        writeln!(f, "bytes_h2d:            {:>14}", self.bytes_h2d)?;
        writeln!(f, "bytes_d2h:            {:>14}", self.bytes_d2h)?;
        write!(f, "kernels_launched:     {:>14}", self.kernels_launched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Counters::new();
        a.gpu_page_faults = 3;
        a.bytes_h2d = 100;
        let mut b = Counters::new();
        b.gpu_page_faults = 4;
        b.pages_prefetched = 7;
        a.merge(&b);
        assert_eq!(a.gpu_page_faults, 7);
        assert_eq!(a.pages_prefetched, 7);
        assert_eq!(a.bytes_h2d, 100);
    }

    #[test]
    fn delta_since_subtracts() {
        let mut early = Counters::new();
        early.kernels_launched = 10;
        let mut late = early;
        late.kernels_launched = 25;
        late.gpu_page_faults = 5;
        let d = late.delta_since(&early);
        assert_eq!(d.kernels_launched, 15);
        assert_eq!(d.gpu_page_faults, 5);
    }

    #[test]
    fn aggregates() {
        let c = Counters {
            pages_faulted_in: 2,
            pages_prefetched: 3,
            pages_evicted_demand: 1,
            pages_preevicted: 4,
            pages_invalidated: 5,
            ..Counters::default()
        };
        assert_eq!(c.pages_migrated_in(), 5);
        assert_eq!(c.pages_evicted(), 10);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Counters::default().to_string().is_empty());
    }
}
