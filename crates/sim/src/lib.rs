//! Simulation substrate for the DeepUM reproduction.
//!
//! The original DeepUM system runs against real hardware: an NVIDIA V100,
//! the NVIDIA device driver's Unified Memory (UM) fault handler, and a
//! Hioki power meter for energy measurements. This crate provides the
//! deterministic, discrete-event replacements used throughout the
//! reproduction:
//!
//! * [`time::Ns`] — virtual-time nanoseconds, the base unit of the whole
//!   simulation.
//! * [`clock::SimClock`] — a monotonically advancing virtual clock.
//! * [`costs::CostModel`] — calibrated latency/bandwidth constants for the
//!   paper's evaluation platform (V100 PCIe 16 GB / 32 GB, Table 1).
//! * [`energy`] — a piecewise power-state model integrating to joules,
//!   standing in for the paper's full-system power meter.
//! * [`metrics::Counters`] — named event counters (page faults, migrations,
//!   prefetch hits, ...) used by every experiment.
//! * [`rng::DetRng`] — seeded RNG so that every run is reproducible.
//! * [`faultinject`] — seeded, deterministic fault injection (DMA
//!   failures, host OOM, fault storms, table drops, launch delays) for
//!   robustness testing of the layers above.
//!
//! # Example
//!
//! ```
//! use deepum_sim::clock::SimClock;
//! use deepum_sim::costs::CostModel;
//! use deepum_sim::time::Ns;
//!
//! let costs = CostModel::v100_32gb();
//! let mut clock = SimClock::new();
//! // Transferring one UM block (2 MiB) over PCIe:
//! clock.advance(costs.transfer_time(2 * 1024 * 1024));
//! assert!(clock.now() > Ns::ZERO);
//! ```

#![forbid(unsafe_code)]

pub mod clock;
pub mod costs;
pub mod energy;
pub mod faultinject;
pub mod metrics;
pub mod rng;
pub mod time;

pub use clock::SimClock;
pub use costs::CostModel;
pub use energy::{EnergyMeter, PowerModel, PowerState};
pub use faultinject::{
    BackendHealth, DegradationState, FaultInjector, InjectionPlan, InjectionStats, SharedInjector,
    WatchdogTransition,
};
pub use metrics::Counters;
pub use rng::DetRng;
pub use time::Ns;
