//! Virtual-time representation.
//!
//! All latencies, bandwidth computations, and the simulation clock use
//! [`Ns`], a newtype over `u64` nanoseconds. Using a dedicated type (rather
//! than a bare integer) keeps durations from being confused with counts or
//! byte sizes across the workspace (C-NEWTYPE).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration or instant measured in virtual nanoseconds.
///
/// `Ns` is both a duration and a point in virtual time; the simulation
/// starts at `Ns::ZERO`, and instants are durations since that origin.
///
/// # Example
///
/// ```
/// use deepum_sim::time::Ns;
///
/// let a = Ns::from_micros(3);
/// let b = Ns::from_nanos(500);
/// assert_eq!((a + b).as_nanos(), 3_500);
/// assert_eq!(a.saturating_sub(Ns::from_millis(1)), Ns::ZERO);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Ns(u64);

impl Ns {
    /// Zero duration / the simulation origin.
    pub const ZERO: Ns = Ns(0);
    /// The largest representable instant.
    pub const MAX: Ns = Ns(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Ns(nanos)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Ns(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Ns(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Ns(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            Ns::ZERO
        } else {
            Ns((secs * 1e9).round() as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: never underflows below [`Ns::ZERO`].
    #[inline]
    pub const fn saturating_sub(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition: never overflows past [`Ns::MAX`].
    #[inline]
    pub const fn saturating_add(self, rhs: Ns) -> Ns {
        Ns(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by a scalar: never overflows past
    /// [`Ns::MAX`]. Use this (not `Mul<u64>`) for geometric backoff
    /// schedules, where the factor can grow without bound.
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> Ns {
        Ns(self.0.saturating_mul(rhs))
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Ns) -> Ns {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: Ns) -> Ns {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Scales the duration by a non-negative floating factor, rounding to
    /// the nearest nanosecond.
    #[inline]
    pub fn scale(self, factor: f64) -> Ns {
        debug_assert!(factor >= 0.0, "durations cannot be negative");
        Ns((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Ns {
    type Output = Ns;
    #[inline]
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    #[inline]
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use
    /// [`Ns::saturating_sub`] when underflow is expected.
    #[inline]
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl SubAssign for Ns {
    #[inline]
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        iter.fold(Ns::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if n >= 1_000_000 {
            write!(f, "{:.3}ms", n as f64 / 1e6)
        } else if n >= 1_000 {
            write!(f, "{:.3}us", n as f64 / 1e3)
        } else {
            write!(f, "{n}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Ns::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Ns::from_millis(3).as_micros(), 3_000);
        assert_eq!(Ns::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Ns::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(Ns::from_secs_f64(-1.0), Ns::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Ns::from_nanos(100);
        let b = Ns::from_nanos(40);
        assert_eq!(a + b, Ns::from_nanos(140));
        assert_eq!(a - b, Ns::from_nanos(60));
        assert_eq!(a * 3, Ns::from_nanos(300));
        assert_eq!(a / 4, Ns::from_nanos(25));
        assert_eq!(b.saturating_sub(a), Ns::ZERO);
        assert_eq!(Ns::MAX.saturating_add(a), Ns::MAX);
    }

    #[test]
    fn min_max_and_scale() {
        let a = Ns::from_nanos(100);
        let b = Ns::from_nanos(200);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.scale(0.5), a);
        assert_eq!(a.scale(2.0), b);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Ns = (1..=4).map(Ns::from_nanos).sum();
        assert_eq!(total, Ns::from_nanos(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Ns::from_nanos(7).to_string(), "7ns");
        assert_eq!(Ns::from_micros(7).to_string(), "7.000us");
        assert_eq!(Ns::from_millis(7).to_string(), "7.000ms");
        assert_eq!(Ns::from_secs(7).to_string(), "7.000s");
    }
}
