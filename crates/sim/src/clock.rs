//! The virtual simulation clock.

use serde::{Deserialize, Serialize};

use crate::time::Ns;

/// A monotonically advancing virtual clock.
///
/// Every component of the simulated system (GPU engine, UM driver, DeepUM
/// driver threads) charges its latencies against a single `SimClock`, which
/// makes runs exactly reproducible and lets experiments report virtual
/// elapsed time instead of noisy wall-clock measurements.
///
/// # Example
///
/// ```
/// use deepum_sim::clock::SimClock;
/// use deepum_sim::time::Ns;
///
/// let mut clock = SimClock::new();
/// clock.advance(Ns::from_micros(10));
/// clock.advance_to(Ns::from_micros(5)); // earlier targets are ignored
/// assert_eq!(clock.now(), Ns::from_micros(10));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimClock {
    now: Ns,
}

impl SimClock {
    /// Creates a clock at the simulation origin (`Ns::ZERO`).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual instant.
    #[inline]
    pub fn now(&self) -> Ns {
        self.now
    }

    /// Advances the clock by `delta`.
    #[inline]
    pub fn advance(&mut self, delta: Ns) {
        self.now += delta;
    }

    /// Advances the clock to `instant` if it lies in the future; a target in
    /// the past or present leaves the clock unchanged (monotonicity).
    #[inline]
    pub fn advance_to(&mut self, instant: Ns) {
        if instant > self.now {
            self.now = instant;
        }
    }

    /// Virtual time elapsed since `earlier`. Returns [`Ns::ZERO`] if
    /// `earlier` is in the future.
    #[inline]
    pub fn since(&self, earlier: Ns) -> Ns {
        self.now.saturating_sub(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), Ns::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance(Ns::from_nanos(5));
        c.advance(Ns::from_nanos(7));
        assert_eq!(c.now(), Ns::from_nanos(12));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = SimClock::new();
        c.advance_to(Ns::from_nanos(100));
        assert_eq!(c.now(), Ns::from_nanos(100));
        c.advance_to(Ns::from_nanos(50));
        assert_eq!(c.now(), Ns::from_nanos(100));
    }

    #[test]
    fn since_saturates() {
        let mut c = SimClock::new();
        c.advance(Ns::from_nanos(30));
        assert_eq!(c.since(Ns::from_nanos(10)), Ns::from_nanos(20));
        assert_eq!(c.since(Ns::from_nanos(40)), Ns::ZERO);
    }
}
