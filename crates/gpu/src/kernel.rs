//! Kernel launch descriptors.
//!
//! A CUDA kernel, from the memory system's point of view, is a named
//! computation that touches an ordered sequence of UM blocks (each with a
//! per-block page footprint) and burns a certain amount of compute time.
//! DeepUM identifies kernels by the hash of their name and arguments
//! (Section 3.1); [`ExecSignature`] is that hash.

use core::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use deepum_mem::{BlockNum, PageMask};
use deepum_sim::time::Ns;
use serde::{Deserialize, Serialize};

use crate::fault::AccessKind;

/// Hash of a kernel's name and launch arguments.
///
/// The DeepUM runtime computes this for every launch and uses it to look
/// up (or allot) the kernel's *execution ID* in the execution ID table.
///
/// # Example
///
/// ```
/// use deepum_gpu::kernel::ExecSignature;
///
/// let a = ExecSignature::of("volta_sgemm_128x64", &[256, 1024]);
/// let b = ExecSignature::of("volta_sgemm_128x64", &[256, 1024]);
/// let c = ExecSignature::of("volta_sgemm_128x64", &[512, 1024]);
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ExecSignature(pub u64);

impl ExecSignature {
    /// Hashes a kernel name plus its scalar launch arguments.
    pub fn of(name: &str, args: &[u64]) -> Self {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        args.hash(&mut hasher);
        ExecSignature(hasher.finish())
    }
}

impl fmt::Display for ExecSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{:016x}", self.0)
    }
}

/// One ordered access a kernel makes to a UM block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockAccess {
    /// The UM block touched.
    pub block: BlockNum,
    /// Which of the block's pages the kernel touches.
    pub pages: PageMask,
    /// Read or write intent.
    pub kind: AccessKind,
}

impl BlockAccess {
    /// Convenience constructor for an access touching the given pages.
    pub fn new(block: BlockNum, pages: PageMask, kind: AccessKind) -> Self {
        BlockAccess { block, pages, kind }
    }
}

/// A kernel launch: identity, ordered page-access trace, and compute time.
///
/// The access trace order is the order in which page faults would be
/// observed by the driver if nothing is resident — the signal DeepUM's
/// UM-block correlation tables record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelLaunch {
    /// Human-readable kernel name (e.g. `"resnet200.conv2d_34.fwd"`).
    pub name: Arc<str>,
    /// Hash of name + arguments identifying repeated launches.
    pub signature: ExecSignature,
    /// Ordered UM-block accesses.
    pub accesses: Vec<BlockAccess>,
    /// Pure compute time of the kernel with all data resident.
    pub compute: Ns,
}

impl KernelLaunch {
    /// Creates a launch descriptor, deriving the signature from `name` and
    /// `args`.
    pub fn new(
        name: impl Into<Arc<str>>,
        args: &[u64],
        accesses: Vec<BlockAccess>,
        compute: Ns,
    ) -> Self {
        let name = name.into();
        let signature = ExecSignature::of(&name, args);
        KernelLaunch {
            name,
            signature,
            accesses,
            compute,
        }
    }

    /// Total number of pages touched (counting each access separately).
    pub fn touched_pages(&self) -> u64 {
        self.accesses.iter().map(|a| a.pages.count() as u64).sum()
    }

    /// Total bytes touched (pages × page size, counting each access).
    pub fn touched_bytes(&self) -> u64 {
        self.touched_pages() * deepum_mem::PAGE_BYTES
    }

    /// Distinct UM blocks in the access trace, in first-touch order.
    pub fn distinct_blocks(&self) -> Vec<BlockNum> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for a in &self.accesses {
            if seen.insert(a.block) {
                out.push(a.block);
            }
        }
        out
    }
}

impl fmt::Display for KernelLaunch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} accesses, {} compute)",
            self.name,
            self.accesses.len(),
            self.compute
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(n: usize) -> PageMask {
        PageMask::first_n(n)
    }

    #[test]
    fn signature_depends_on_name_and_args() {
        let a = ExecSignature::of("k", &[1, 2]);
        assert_eq!(a, ExecSignature::of("k", &[1, 2]));
        assert_ne!(a, ExecSignature::of("k", &[2, 1]));
        assert_ne!(a, ExecSignature::of("k2", &[1, 2]));
    }

    #[test]
    fn launch_accounting() {
        let k = KernelLaunch::new(
            "test.kernel",
            &[7],
            vec![
                BlockAccess::new(BlockNum::new(0), mask(10), AccessKind::Read),
                BlockAccess::new(BlockNum::new(1), mask(20), AccessKind::Write),
                BlockAccess::new(BlockNum::new(0), mask(5), AccessKind::Read),
            ],
            Ns::from_micros(50),
        );
        assert_eq!(k.touched_pages(), 35);
        assert_eq!(k.touched_bytes(), 35 * 4096);
        assert_eq!(
            k.distinct_blocks(),
            vec![BlockNum::new(0), BlockNum::new(1)]
        );
        assert_eq!(k.signature, ExecSignature::of("test.kernel", &[7]));
    }

    #[test]
    fn display_mentions_name() {
        let k = KernelLaunch::new("my.kernel", &[], vec![], Ns::from_micros(1));
        assert!(k.to_string().contains("my.kernel"));
    }
}
