//! The GPU fault buffer and fault records.
//!
//! "A fault buffer is a circular queue in the NVIDIA GPU. It stores
//! faulted access information. The GPU can generate multiple faults
//! concurrently, and there can be multiple fault entries for the same page
//! in the fault buffer." (Section 2.3.) The driver drains this buffer,
//! deduplicates entries, and groups them by UM block.

use core::fmt;
use std::collections::VecDeque;

use deepum_mem::PageNum;
use serde::{Deserialize, Serialize};

/// Identifier of a streaming multiprocessor (SM).
///
/// Each SM has its own TLB; while any fault from an SM is outstanding,
/// that TLB is locked and the SM cannot translate new addresses. The
/// engine uses `SmId` to attribute faults and model that serialization.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SmId(pub u16);

impl fmt::Display for SmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SM{}", self.0)
    }
}

/// How a faulted access intended to use the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Load from the page.
    Read,
    /// Store to the page.
    Write,
}

/// One record in the fault buffer: a page access that missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultEntry {
    /// The page whose translation failed.
    pub page: PageNum,
    /// Read or write intent of the access.
    pub kind: AccessKind,
    /// SM that raised the fault.
    pub sm: SmId,
}

/// The circular fault queue inside the GPU.
///
/// The buffer has a fixed capacity; entries pushed while it is full are
/// dropped (the access simply faults again on replay, as on hardware).
/// [`FaultBuffer::overflowed`] reports whether that happened since the
/// last drain, which the engine uses to re-probe residency.
///
/// # Example
///
/// ```
/// use deepum_gpu::fault::{AccessKind, FaultBuffer, FaultEntry, SmId};
/// use deepum_mem::PageNum;
///
/// let mut buf = FaultBuffer::new(2);
/// for i in 0..3 {
///     buf.push(FaultEntry {
///         page: PageNum::new(i),
///         kind: AccessKind::Read,
///         sm: SmId(0),
///     });
/// }
/// assert!(buf.overflowed());
/// assert_eq!(buf.drain().len(), 2);
/// assert!(!buf.overflowed());
/// ```
#[derive(Debug, Clone)]
pub struct FaultBuffer {
    entries: VecDeque<FaultEntry>,
    capacity: usize,
    overflowed: bool,
    total_pushed: u64,
    total_dropped: u64,
}

impl FaultBuffer {
    /// Default capacity used by the simulated device; sized like the
    /// replayable fault buffer of a Volta-class GPU.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fault buffer capacity must be positive");
        FaultBuffer {
            entries: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            capacity,
            overflowed: false,
            total_pushed: 0,
            total_dropped: 0,
        }
    }

    /// Appends a fault record; drops it (and sets the overflow flag) when
    /// the buffer is full.
    pub fn push(&mut self, entry: FaultEntry) {
        if self.entries.len() >= self.capacity {
            self.overflowed = true;
            self.total_dropped += 1;
            return;
        }
        self.total_pushed += 1;
        self.entries.push_back(entry);
    }

    /// Removes and returns all buffered entries in arrival order, clearing
    /// the overflow flag.
    pub fn drain(&mut self) -> Vec<FaultEntry> {
        self.overflowed = false;
        self.entries.drain(..).collect()
    }

    /// Drains all buffered entries into `out`, clearing the overflow
    /// flag. `out` is cleared first, so its allocation is reused across
    /// drains — the engine calls this once per fault batch on the hot
    /// path, where [`FaultBuffer::drain`] would allocate a fresh `Vec`
    /// every time.
    pub fn drain_into(&mut self, out: &mut Vec<FaultEntry>) {
        self.overflowed = false;
        out.clear();
        out.extend(self.entries.drain(..));
    }

    /// Number of buffered entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if at least one entry was dropped since the last drain.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Total entries accepted over the buffer's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Total entries dropped to overflow over the buffer's lifetime.
    pub fn total_dropped(&self) -> u64 {
        self.total_dropped
    }

    /// Recovery hook: drops any buffered entries (they died with the
    /// device), clears the overflow flag, and rewinds the lifetime
    /// counters to the checkpointed values.
    pub(crate) fn reset_for_restore(&mut self, total_pushed: u64, total_dropped: u64) {
        self.entries.clear();
        self.overflowed = false;
        self.total_pushed = total_pushed;
        self.total_dropped = total_dropped;
    }
}

impl Default for FaultBuffer {
    fn default() -> Self {
        FaultBuffer::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> FaultEntry {
        FaultEntry {
            page: PageNum::new(i),
            kind: AccessKind::Read,
            sm: SmId((i % 4) as u16),
        }
    }

    #[test]
    fn push_and_drain_preserve_order() {
        let mut buf = FaultBuffer::new(8);
        for i in 0..5 {
            buf.push(entry(i));
        }
        assert_eq!(buf.len(), 5);
        let drained = buf.drain();
        assert_eq!(drained.len(), 5);
        assert!(drained.windows(2).all(|w| w[0].page < w[1].page));
        assert!(buf.is_empty());
    }

    #[test]
    fn duplicates_are_allowed() {
        let mut buf = FaultBuffer::new(8);
        buf.push(entry(1));
        buf.push(entry(1));
        assert_eq!(buf.drain().len(), 2);
    }

    #[test]
    fn overflow_drops_and_flags() {
        let mut buf = FaultBuffer::new(3);
        for i in 0..5 {
            buf.push(entry(i));
        }
        assert!(buf.overflowed());
        assert_eq!(buf.total_dropped(), 2);
        assert_eq!(buf.drain().len(), 3);
        assert!(!buf.overflowed());
        assert_eq!(buf.total_pushed(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FaultBuffer::new(0);
    }

    #[test]
    fn drain_into_matches_drain() {
        let mut a = FaultBuffer::new(8);
        let mut b = FaultBuffer::new(8);
        for i in 0..5 {
            a.push(entry(i));
            b.push(entry(i));
        }
        let mut out = Vec::new();
        a.drain_into(&mut out);
        assert_eq!(out, b.drain());
        assert!(a.is_empty());
    }

    #[test]
    fn drain_into_clears_previous_contents_and_reuses_capacity() {
        let mut buf = FaultBuffer::new(8);
        let mut out = vec![entry(99); 6];
        let cap = out.capacity();
        buf.push(entry(1));
        buf.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], entry(1));
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn drain_into_clears_overflow_flag() {
        let mut buf = FaultBuffer::new(2);
        for i in 0..4 {
            buf.push(entry(i));
        }
        assert!(buf.overflowed());
        let mut out = Vec::new();
        buf.drain_into(&mut out);
        assert!(!buf.overflowed());
        assert_eq!(out.len(), 2);
    }
}
