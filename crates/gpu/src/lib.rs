//! Simulated GPU device.
//!
//! The paper's platform is an NVIDIA Tesla V100. DeepUM interacts with the
//! GPU through exactly three hardware mechanisms, all reproduced here:
//!
//! * the **fault buffer** — a circular queue in the GPU that accumulates
//!   faulted-access records until the driver drains it
//!   ([`fault::FaultBuffer`], Section 2.3);
//! * the **page-fault / replay protocol** — an SM whose thread touches a
//!   non-resident page stalls (its TLB locks) until the driver migrates the
//!   page and sends a replay signal ([`engine::GpuEngine`], Section 2.2);
//! * **kernel launches** — the unit of work whose page-access pattern
//!   DeepUM's correlation tables memorize ([`kernel::KernelLaunch`]).
//!
//! The engine is generic over a [`engine::UmBackend`], the interface the
//! UM driver implements. This keeps the device model free of driver
//! policy, mirroring the hardware/driver split of the real system.

#![forbid(unsafe_code)]

pub mod engine;
pub mod fault;
pub mod kernel;

pub use engine::{BackendError, EngineError, GpuEngine, KernelRunStats, UmBackend};
pub use fault::{AccessKind, FaultBuffer, FaultEntry, SmId};
pub use kernel::{BlockAccess, ExecSignature, KernelLaunch};
