//! Kernel execution engine.
//!
//! Executes [`KernelLaunch`] descriptors against a memory backend (the UM
//! driver), reproducing the GPU-side fault protocol:
//!
//! 1. the kernel touches a UM block; pages without a valid device mapping
//!    raise faults into the [`FaultBuffer`];
//! 2. faulting SMs stall (their TLBs lock), so the GPU only accumulates a
//!    bounded batch of fault entries before the driver must intervene;
//! 3. the driver drains the buffer, migrates pages, sends the replay
//!    signal; the engine charges the handling time as kernel stall;
//! 4. compute proceeds; background migrations (prefetches issued by the
//!    driver) overlap with compute via [`UmBackend::overlap_compute`].
//!
//! Compute time is spread across the access trace, so a kernel whose later
//! blocks are still being prefetched can hide that latency behind its own
//! earlier compute — the mechanism DeepUM's intra-kernel chaining exploits.

use deepum_mem::{BlockNum, PageMask};
use deepum_sim::clock::SimClock;
use deepum_sim::energy::{EnergyMeter, PowerState};
use deepum_sim::faultinject::{BackendHealth, SharedInjector};
use deepum_sim::time::Ns;
use deepum_trace::{InjectKind, PressureLevel, SharedTracer, TraceEvent};

use core::fmt;

use crate::fault::{FaultBuffer, FaultEntry, SmId};
use crate::kernel::KernelLaunch;

/// Failure surfaced by a [`UmBackend`] while draining a fault batch.
///
/// These are *driver* failures, distinct from the injected transient
/// faults the backends already retry internally: when one of these
/// escapes `handle_faults`, the replayed access could never succeed and
/// the run must stop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// A demand migration needed more device pages than the GPU holds
    /// even with every evictable block evicted.
    CapacityExceeded {
        /// Pages the faulting access required to become resident.
        needed_pages: u64,
        /// Total device capacity in pages.
        capacity_pages: u64,
    },
    /// Driver bookkeeping lost track of a block the fault path needed —
    /// an internal inconsistency, reported instead of a panic so the
    /// simulation can surface it as a failed run.
    MissingBlock(BlockNum),
    /// **Hard fault.** The driver crashed mid-fault-drain (injected via
    /// a scheduled [`InjectionPlan::driver_crash_at`] entry) before
    /// mutating any driver state. Device-side residency is lost; the
    /// session must restore the last checkpoint and replay.
    ///
    /// [`InjectionPlan::driver_crash_at`]: deepum_sim::faultinject::InjectionPlan::driver_crash_at
    DriverCrash,
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::CapacityExceeded {
                needed_pages,
                capacity_pages,
            } => write!(
                f,
                "demand migration of {needed_pages} pages exceeds device capacity of {capacity_pages} pages"
            ),
            BackendError::MissingBlock(block) => {
                write!(f, "driver bookkeeping lost track of {block}")
            }
            BackendError::DriverCrash => {
                write!(f, "driver crashed mid-fault-drain (injected hard fault)")
            }
        }
    }
}

/// Failure of one kernel execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The backend failed while handling a fault drain.
    Backend(BackendError),
    /// [`UmBackend::validate`] reported a broken invariant after a drain
    /// (only checked when validation is enabled).
    InvariantViolated(String),
    /// A fault drain resolved nothing: the replay would loop forever on
    /// real hardware.
    NoProgress {
        /// Block whose pages stayed non-resident.
        block: BlockNum,
        /// Pages still missing after the drain.
        missing: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Backend(e) => write!(f, "backend failed during fault drain: {e}"),
            EngineError::InvariantViolated(msg) => {
                write!(f, "backend invariant violated after fault drain: {msg}")
            }
            EngineError::NoProgress { block, missing } => write!(
                f,
                "backend made no progress on faults for {block} ({missing} pages missing)"
            ),
        }
    }
}

impl From<BackendError> for EngineError {
    fn from(e: BackendError) -> Self {
        EngineError::Backend(e)
    }
}

/// The driver-side interface the engine executes against.
///
/// Implemented by the naive UM driver, by DeepUM, and by the tensor-level
/// swapping baselines (which pin everything they manage and therefore see
/// no faults).
pub trait UmBackend {
    /// Subset of `pages` in `block` with no valid device mapping.
    fn resident_miss(&self, block: BlockNum, pages: &PageMask) -> PageMask;

    /// Handles a drained fault batch: migrate the faulted pages and remap.
    /// Returns the stall time observed by the GPU (fault handling is on
    /// the critical path). After this call every faulted page must be
    /// resident.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`] when the batch can never be made
    /// resident (capacity exhausted, bookkeeping inconsistency); the
    /// engine aborts the kernel with [`EngineError::Backend`].
    fn handle_faults(&mut self, now: Ns, faults: &[FaultEntry]) -> Result<Ns, BackendError>;

    /// Records a successful (resident) access for recency/prefetch-hit
    /// bookkeeping.
    fn touch(&mut self, now: Ns, block: BlockNum, pages: &PageMask);

    /// The GPU computes for `dur` starting at `now`; the backend may
    /// overlap background work (prefetch migrations). Returns how much of
    /// `dur` carried PCIe traffic, for energy accounting.
    fn overlap_compute(&mut self, now: Ns, dur: Ns) -> Ns;

    /// Called when the current kernel retires; lets the driver resume any
    /// paused prefetch chaining (Section 4.2).
    fn kernel_finished(&mut self, now: Ns);

    /// Installs a shared fault injector; the backend rolls its DMA /
    /// host-OOM / table-drop faults against it. Backends without
    /// injectable failure paths ignore the handle.
    fn install_injector(&mut self, _injector: SharedInjector) {}

    /// Installs a shared tracer; the backend then emits structured
    /// events (migrations, evictions, prefetch activity) into it.
    /// Backends without traced paths ignore the handle.
    fn install_tracer(&mut self, _tracer: SharedTracer) {}

    /// Checks the backend's internal invariants (residency accounting,
    /// LRU consistency). The engine asserts this after every fault drain
    /// when validation is enabled; injection tests lean on it to prove
    /// that injected faults never corrupt driver state.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// Graceful-degradation report (watchdog transitions, backpressure
    /// drops). Backends without degradation machinery report the default.
    fn health(&self) -> BackendHealth {
        BackendHealth::default()
    }

    /// Serializes the backend's recoverable state into a versioned,
    /// checksummed binary snapshot (see `deepum_um::snapshot`). Returns
    /// `None` for backends without checkpoint support; the session then
    /// cannot recover this backend from hard faults.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state captured by [`UmBackend::snapshot_state`]. After a
    /// successful restore the backend must pass [`UmBackend::validate`].
    ///
    /// # Errors
    ///
    /// Returns a description of the decode failure (bad magic, version
    /// mismatch, checksum mismatch, truncation) or a capability error
    /// for backends without snapshot support.
    fn restore_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err("this backend does not support snapshot/restore".into())
    }

    /// Pages currently resident on the device, used by the recovery
    /// protocol to charge the demand-only re-migration of the restored
    /// resident set to downtime.
    fn resident_pages(&self) -> u64 {
        0
    }

    /// Cumulative memory-pressure governor statistics, `None` when no
    /// governor is installed (the default). The report layer maps this
    /// to the omitted-not-null `RunReport.pressure` section.
    fn pressure(&self) -> Option<PressureStats> {
        None
    }

    /// Cumulative device-wear statistics (ECC page retirement), `None`
    /// when no frame was ever retired (the default). The report layer
    /// maps this to the omitted-not-null `RunReport.wear` section.
    fn wear(&self) -> Option<WearStats> {
        None
    }
}

/// Cumulative device-wear statistics: permanent ECC page-frame
/// retirement and the live migrations it forced. Defined next to
/// [`UmBackend`] so backends can report it without the report layer
/// depending on the um crate.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WearStats {
    /// Device page frames permanently retired (blacklisted).
    pub retired_pages: u64,
    /// Pages live-migrated off the device because a frame retired or
    /// the shrunk capacity no longer held them.
    pub remigrated_pages: u64,
}

/// Cumulative statistics of the memory-pressure governor
/// (`deepum_um::pressure`). Defined next to [`UmBackend`] so backends
/// can report it without the report layer depending on the um crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureStats {
    /// Final steady-state pressure classification.
    pub level: PressureLevel,
    /// Blocks demand-migrated back within the refault window of their
    /// eviction (ping-pong events).
    pub refaults: u64,
    /// Eviction victims passed over because of refault cooldown.
    pub cooldown_skips: u64,
    /// Pressure-level transitions over the run.
    pub level_changes: u64,
    /// Prefetch-window resizes driven by the governor.
    pub window_resizes: u64,
    /// Highest EWMA thrash score observed, whole percent.
    pub peak_score_pct: u64,
}

impl Default for PressureStats {
    fn default() -> Self {
        PressureStats {
            level: PressureLevel::Normal,
            refaults: 0,
            cooldown_skips: 0,
            level_changes: 0,
            window_resizes: 0,
            peak_score_pct: 0,
        }
    }
}

/// Statistics for one kernel execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelRunStats {
    /// Compute time charged.
    pub compute: Ns,
    /// Fault-handling stall charged.
    pub stall: Ns,
    /// Page-fault entries delivered to the driver.
    pub faults: u64,
    /// Fault-buffer drains (handler invocations).
    pub fault_batches: u64,
}

impl KernelRunStats {
    /// Total virtual time the kernel occupied the GPU.
    pub fn elapsed(&self) -> Ns {
        self.compute + self.stall
    }

    /// Accumulates another kernel's stats into `self`.
    pub fn merge(&mut self, other: &KernelRunStats) {
        self.compute += other.compute;
        self.stall += other.stall;
        self.faults += other.faults;
        self.fault_batches += other.fault_batches;
    }
}

/// The engine-side slice of a run checkpoint: the SM round-robin cursor
/// and the fault buffer's lifetime counters. Captured at kernel
/// boundaries, where the fault buffer is always empty, so buffered
/// entries need no snapshotting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineSnapshot {
    next_sm: u16,
    total_pushed: u64,
    total_dropped: u64,
}

impl EngineSnapshot {
    /// Appends the snapshot's fields to a binary checkpoint image.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.next_sm.to_le_bytes());
        out.extend_from_slice(&self.total_pushed.to_le_bytes());
        out.extend_from_slice(&self.total_dropped.to_le_bytes());
    }

    /// Number of bytes [`Self::encode_into`] appends.
    pub const ENCODED_LEN: usize = 2 + 8 + 8;

    /// Decodes a snapshot encoded by [`Self::encode_into`].
    ///
    /// # Errors
    ///
    /// Returns a description when `bytes` is shorter than
    /// [`Self::ENCODED_LEN`].
    pub fn decode_from(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < Self::ENCODED_LEN {
            // deepum-tidy: allow(hot-path-alloc) -- error formatting on
            // the cold checkpoint-restore path, never during a drain.
            return Err(format!(
                "engine snapshot truncated: {} of {} bytes",
                bytes.len(),
                Self::ENCODED_LEN
            ));
        }
        let mut sm = [0u8; 2];
        sm.copy_from_slice(&bytes[0..2]);
        let mut a = [0u8; 8];
        a.copy_from_slice(&bytes[2..10]);
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[10..18]);
        Ok(EngineSnapshot {
            next_sm: u16::from_le_bytes(sm),
            total_pushed: u64::from_le_bytes(a),
            total_dropped: u64::from_le_bytes(b),
        })
    }
}

/// The simulated GPU front end.
///
/// # Example
///
/// See the crate-level integration tests; driving the engine requires a
/// [`UmBackend`] implementation, typically `deepum_um::UmDriver`.
#[derive(Debug)]
pub struct GpuEngine {
    fault_buffer: FaultBuffer,
    num_sms: u16,
    next_sm: u16,
    demand_batch: usize,
    injector: Option<SharedInjector>,
    tracer: Option<SharedTracer>,
    validate_after_drain: bool,
    scratch: Vec<FaultEntry>,
}

impl GpuEngine {
    /// V100 streaming-multiprocessor count.
    pub const V100_SMS: u16 = 80;

    /// Pages the GPU accumulates before stalled SMs force a handler pass.
    /// Small relative to the buffer capacity: faulting warps stall quickly,
    /// so hardware delivers faults in modest groups.
    pub const DEFAULT_DEMAND_BATCH: usize = 256;

    /// Creates an engine with V100-like parameters.
    pub fn new() -> Self {
        Self::with_params(
            FaultBuffer::default(),
            Self::V100_SMS,
            Self::DEFAULT_DEMAND_BATCH,
        )
    }

    /// Creates an engine with explicit fault buffer, SM count, and demand
    /// batch size.
    ///
    /// # Panics
    ///
    /// Panics if `num_sms` or `demand_batch` is zero.
    pub fn with_params(fault_buffer: FaultBuffer, num_sms: u16, demand_batch: usize) -> Self {
        assert!(num_sms > 0, "GPU needs at least one SM");
        assert!(demand_batch > 0, "demand batch must be positive");
        GpuEngine {
            fault_buffer,
            num_sms,
            next_sm: 0,
            demand_batch,
            injector: None,
            tracer: None,
            validate_after_drain: false,
            scratch: Vec::new(),
        }
    }

    /// Installs a shared fault injector; fault storms then shrink the
    /// effective demand batch for the storm's duration.
    pub fn set_injector(&mut self, injector: SharedInjector) {
        self.injector = Some(injector);
    }

    /// Installs a shared tracer; fault-buffer drains and the resulting
    /// TLB stalls are then emitted as structured events.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// When enabled, the engine checks [`UmBackend::validate`] after
    /// every fault drain and fails the kernel with
    /// [`EngineError::InvariantViolated`] on the first broken invariant.
    /// Off by default (it walks the backend's full block map).
    pub fn set_validate_after_drain(&mut self, on: bool) {
        self.validate_after_drain = on;
    }

    /// Lifetime page-fault entries accepted by the fault buffer.
    pub fn total_faults(&self) -> u64 {
        self.fault_buffer.total_pushed()
    }

    /// Captures the engine state a recovery checkpoint needs. Call only
    /// at kernel boundaries (the fault buffer must be drained).
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            next_sm: self.next_sm,
            total_pushed: self.fault_buffer.total_pushed(),
            total_dropped: self.fault_buffer.total_dropped(),
        }
    }

    /// Restores state captured by [`GpuEngine::snapshot`], dropping any
    /// buffered fault entries (they died with the device).
    pub fn restore(&mut self, snap: &EngineSnapshot) {
        self.next_sm = snap.next_sm;
        self.fault_buffer
            .reset_for_restore(snap.total_pushed, snap.total_dropped);
    }

    fn next_sm(&mut self) -> SmId {
        let sm = SmId(self.next_sm);
        self.next_sm = (self.next_sm + 1) % self.num_sms;
        sm
    }

    /// Executes one kernel to completion against `backend`, advancing
    /// `clock` and charging `energy`.
    ///
    /// # Errors
    ///
    /// Fails when the backend cannot make faulted pages resident
    /// ([`EngineError::Backend`], [`EngineError::NoProgress`]) or, with
    /// validation enabled, when a post-drain invariant check fails
    /// ([`EngineError::InvariantViolated`]). The clock and energy meter
    /// keep whatever they accumulated before the failure.
    pub fn execute<B>(
        &mut self,
        kernel: &KernelLaunch,
        clock: &mut SimClock,
        backend: &mut B,
        energy: &mut EnergyMeter,
    ) -> Result<KernelRunStats, EngineError>
    where
        B: UmBackend + ?Sized,
    {
        let mut stats = KernelRunStats::default();
        let n = kernel.accesses.len();
        let slice = if n == 0 {
            kernel.compute
        } else {
            kernel.compute / n as u64
        };

        for (i, access) in kernel.accesses.iter().enumerate() {
            // Resolve residency for this access; each round models the
            // stalled SMs delivering a bounded batch of fault entries.
            loop {
                let miss = backend.resident_miss(access.block, &access.pages);
                if miss.is_empty() {
                    break;
                }
                let before = miss.count();
                // A fault storm shrinks the batch the stalled SMs can
                // deliver before the handler must run.
                let batch_limit = match &self.injector {
                    Some(inj) => inj.borrow_mut().effective_fault_batch(self.demand_batch),
                    None => self.demand_batch,
                };
                for idx in miss.iter_ones().take(batch_limit) {
                    let sm = self.next_sm();
                    self.fault_buffer.push(FaultEntry {
                        page: access.block.page(idx),
                        kind: access.kind,
                        sm,
                    });
                }
                let GpuEngine {
                    fault_buffer,
                    scratch,
                    ..
                } = self;
                fault_buffer.drain_into(scratch);
                stats.faults += scratch.len() as u64;
                stats.fault_batches += 1;
                if let Some(tr) = &self.tracer {
                    let mut tr = tr.borrow_mut();
                    if batch_limit < self.demand_batch {
                        tr.emit(
                            clock.now().as_nanos(),
                            TraceEvent::InjectedFault {
                                kind: InjectKind::FaultStorm,
                            },
                        );
                    }
                    tr.emit(
                        clock.now().as_nanos(),
                        TraceEvent::FaultBufferDrain {
                            entries: self.scratch.len() as u64,
                        },
                    );
                }
                let stall = backend.handle_faults(clock.now(), &self.scratch)?;
                clock.advance(stall);
                energy.accumulate(PowerState::Transfer, stall);
                stats.stall += stall;
                if let Some(tr) = &self.tracer {
                    tr.borrow_mut().emit(
                        clock.now().as_nanos(),
                        TraceEvent::TlbStall {
                            ns: stall.as_nanos(),
                        },
                    );
                }
                if self.validate_after_drain {
                    if let Err(msg) = backend.validate() {
                        return Err(EngineError::InvariantViolated(msg));
                    }
                }

                let after = backend.resident_miss(access.block, &access.pages).count();
                if after >= before {
                    return Err(EngineError::NoProgress {
                        block: access.block,
                        missing: after as u64,
                    });
                }
            }
            backend.touch(clock.now(), access.block, &access.pages);

            // Compute slice following the access; the last access absorbs
            // the rounding remainder.
            let this_slice = if i + 1 == n {
                kernel.compute - slice * (n as u64 - 1)
            } else {
                slice
            };
            self.run_compute(this_slice, clock, backend, energy, &mut stats);
        }

        if n == 0 {
            self.run_compute(slice, clock, backend, energy, &mut stats);
        }

        backend.kernel_finished(clock.now());
        Ok(stats)
    }

    fn run_compute<B>(
        &mut self,
        dur: Ns,
        clock: &mut SimClock,
        backend: &mut B,
        energy: &mut EnergyMeter,
        stats: &mut KernelRunStats,
    ) where
        B: UmBackend + ?Sized,
    {
        if dur == Ns::ZERO {
            return;
        }
        let busy = backend.overlap_compute(clock.now(), dur).min(dur);
        clock.advance(dur);
        energy.accumulate(PowerState::ComputeTransfer, busy);
        energy.accumulate(PowerState::Compute, dur - busy);
        stats.compute += dur;
    }
}

impl Default for GpuEngine {
    fn default() -> Self {
        GpuEngine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::AccessKind;
    use crate::kernel::BlockAccess;
    use std::collections::HashMap;

    /// A toy backend: everything is non-resident until faulted in, then
    /// stays resident. Each handled fault costs 1 µs.
    #[derive(Default)]
    struct ToyBackend {
        resident: HashMap<BlockNum, PageMask>,
        touched: u64,
        finished: u64,
        overlap_calls: u64,
    }

    impl UmBackend for ToyBackend {
        fn resident_miss(&self, block: BlockNum, pages: &PageMask) -> PageMask {
            match self.resident.get(&block) {
                Some(res) => pages.subtract(res),
                None => *pages,
            }
        }

        fn handle_faults(&mut self, _now: Ns, faults: &[FaultEntry]) -> Result<Ns, BackendError> {
            for f in faults {
                self.resident
                    .entry(f.page.block())
                    .or_insert_with(PageMask::empty)
                    .set(f.page.index_in_block());
            }
            Ok(Ns::from_micros(faults.len() as u64))
        }

        fn touch(&mut self, _now: Ns, _block: BlockNum, pages: &PageMask) {
            self.touched += pages.count() as u64;
        }

        fn overlap_compute(&mut self, _now: Ns, _dur: Ns) -> Ns {
            self.overlap_calls += 1;
            Ns::ZERO
        }

        fn kernel_finished(&mut self, _now: Ns) {
            self.finished += 1;
        }
    }

    fn kernel(blocks: &[(u64, usize)], compute_us: u64) -> KernelLaunch {
        let accesses = blocks
            .iter()
            .map(|&(b, pages)| {
                BlockAccess::new(BlockNum::new(b), PageMask::first_n(pages), AccessKind::Read)
            })
            .collect();
        KernelLaunch::new("toy", &[], accesses, Ns::from_micros(compute_us))
    }

    #[test]
    fn cold_kernel_faults_every_page() {
        let mut engine = GpuEngine::new();
        let mut clock = SimClock::new();
        let mut backend = ToyBackend::default();
        let mut energy = EnergyMeter::new();

        let k = kernel(&[(0, 100), (1, 50)], 30);
        let stats = engine
            .execute(&k, &mut clock, &mut backend, &mut energy)
            .expect("kernel runs");

        assert_eq!(stats.faults, 150);
        assert_eq!(stats.compute, Ns::from_micros(30));
        assert_eq!(stats.stall, Ns::from_micros(150));
        assert_eq!(clock.now(), stats.elapsed());
        assert_eq!(backend.touched, 150);
        assert_eq!(backend.finished, 1);
    }

    #[test]
    fn warm_kernel_faults_nothing() {
        let mut engine = GpuEngine::new();
        let mut clock = SimClock::new();
        let mut backend = ToyBackend::default();
        let mut energy = EnergyMeter::new();

        let k = kernel(&[(0, 100)], 10);
        engine
            .execute(&k, &mut clock, &mut backend, &mut energy)
            .expect("cold kernel runs");
        let warm = engine
            .execute(&k, &mut clock, &mut backend, &mut energy)
            .expect("warm kernel runs");
        assert_eq!(warm.faults, 0);
        assert_eq!(warm.stall, Ns::ZERO);
        assert_eq!(warm.compute, Ns::from_micros(10));
    }

    #[test]
    fn demand_batch_bounds_each_handler_pass() {
        let mut engine = GpuEngine::with_params(FaultBuffer::new(4096), 4, 64);
        let mut clock = SimClock::new();
        let mut backend = ToyBackend::default();
        let mut energy = EnergyMeter::new();

        let k = kernel(&[(0, 512)], 10);
        let stats = engine
            .execute(&k, &mut clock, &mut backend, &mut energy)
            .expect("kernel runs");
        assert_eq!(stats.faults, 512);
        assert_eq!(stats.fault_batches, 8); // 512 / 64
    }

    #[test]
    fn compute_only_kernel_advances_clock() {
        let mut engine = GpuEngine::new();
        let mut clock = SimClock::new();
        let mut backend = ToyBackend::default();
        let mut energy = EnergyMeter::new();

        let k = kernel(&[], 42);
        let stats = engine
            .execute(&k, &mut clock, &mut backend, &mut energy)
            .expect("kernel runs");
        assert_eq!(stats.compute, Ns::from_micros(42));
        assert_eq!(clock.now(), Ns::from_micros(42));
        assert_eq!(backend.overlap_calls, 1);
    }

    #[test]
    fn compute_is_fully_distributed_across_accesses() {
        let mut engine = GpuEngine::new();
        let mut clock = SimClock::new();
        let mut backend = ToyBackend::default();
        let mut energy = EnergyMeter::new();

        // 3 accesses over a compute time not divisible by 3.
        let k = kernel(&[(0, 1), (1, 1), (2, 1)], 100);
        let stats = engine
            .execute(&k, &mut clock, &mut backend, &mut energy)
            .expect("kernel runs");
        assert_eq!(stats.compute, Ns::from_micros(100));
    }

    #[test]
    fn storm_shrinks_demand_batches() {
        use deepum_sim::faultinject::InjectionPlan;

        let plan = InjectionPlan {
            storm_rate: 1.0,
            storm_capacity_frac: 0.25,
            storm_duration_drains: u32::MAX,
            ..InjectionPlan::default()
        };
        let mut engine = GpuEngine::with_params(FaultBuffer::new(4096), 4, 64);
        engine.set_injector(plan.build_shared());
        let mut clock = SimClock::new();
        let mut backend = ToyBackend::default();
        let mut energy = EnergyMeter::new();

        let k = kernel(&[(0, 512)], 10);
        let stats = engine
            .execute(&k, &mut clock, &mut backend, &mut energy)
            .expect("kernel runs");
        assert_eq!(stats.faults, 512);
        assert_eq!(stats.fault_batches, 32); // 512 / (64 * 0.25)
    }

    #[test]
    fn validate_hook_fails_the_kernel_on_violation() {
        struct BrokenBackend(ToyBackend);
        impl UmBackend for BrokenBackend {
            fn resident_miss(&self, block: BlockNum, pages: &PageMask) -> PageMask {
                self.0.resident_miss(block, pages)
            }
            fn handle_faults(
                &mut self,
                now: Ns,
                faults: &[FaultEntry],
            ) -> Result<Ns, BackendError> {
                self.0.handle_faults(now, faults)
            }
            fn touch(&mut self, now: Ns, block: BlockNum, pages: &PageMask) {
                self.0.touch(now, block, pages);
            }
            fn overlap_compute(&mut self, now: Ns, dur: Ns) -> Ns {
                self.0.overlap_compute(now, dur)
            }
            fn kernel_finished(&mut self, now: Ns) {
                self.0.kernel_finished(now);
            }
            fn validate(&self) -> Result<(), String> {
                Err("synthetic violation".into())
            }
        }

        let run = |validate: bool| {
            let mut engine = GpuEngine::new();
            engine.set_validate_after_drain(validate);
            let mut clock = SimClock::new();
            let mut backend = BrokenBackend(ToyBackend::default());
            let mut energy = EnergyMeter::new();
            engine.execute(&kernel(&[(0, 4)], 1), &mut clock, &mut backend, &mut energy)
        };
        assert!(run(false).is_ok());
        assert_eq!(
            run(true),
            Err(EngineError::InvariantViolated("synthetic violation".into()))
        );
    }

    #[test]
    fn stuck_backend_reports_no_progress() {
        /// Accepts faults but never maps anything in.
        #[derive(Default)]
        struct StuckBackend;
        impl UmBackend for StuckBackend {
            fn resident_miss(&self, _block: BlockNum, pages: &PageMask) -> PageMask {
                *pages
            }
            fn handle_faults(
                &mut self,
                _now: Ns,
                _faults: &[FaultEntry],
            ) -> Result<Ns, BackendError> {
                Ok(Ns::ZERO)
            }
            fn touch(&mut self, _now: Ns, _block: BlockNum, _pages: &PageMask) {}
            fn overlap_compute(&mut self, _now: Ns, _dur: Ns) -> Ns {
                Ns::ZERO
            }
            fn kernel_finished(&mut self, _now: Ns) {}
        }

        let mut engine = GpuEngine::new();
        let mut clock = SimClock::new();
        let mut backend = StuckBackend;
        let mut energy = EnergyMeter::new();
        let err = engine
            .execute(&kernel(&[(0, 4)], 1), &mut clock, &mut backend, &mut energy)
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::NoProgress {
                block: BlockNum::new(0),
                missing: 4
            }
        );
        assert!(err.to_string().contains("no progress"));
    }

    #[test]
    fn backend_errors_abort_the_kernel() {
        /// Fails the very first drain with a capacity error.
        #[derive(Default)]
        struct FailingBackend;
        impl UmBackend for FailingBackend {
            fn resident_miss(&self, _block: BlockNum, pages: &PageMask) -> PageMask {
                *pages
            }
            fn handle_faults(
                &mut self,
                _now: Ns,
                _faults: &[FaultEntry],
            ) -> Result<Ns, BackendError> {
                Err(BackendError::CapacityExceeded {
                    needed_pages: 600,
                    capacity_pages: 512,
                })
            }
            fn touch(&mut self, _now: Ns, _block: BlockNum, _pages: &PageMask) {}
            fn overlap_compute(&mut self, _now: Ns, _dur: Ns) -> Ns {
                Ns::ZERO
            }
            fn kernel_finished(&mut self, _now: Ns) {}
        }

        let mut engine = GpuEngine::new();
        let mut clock = SimClock::new();
        let mut backend = FailingBackend;
        let mut energy = EnergyMeter::new();
        let err = engine
            .execute(&kernel(&[(0, 4)], 1), &mut clock, &mut backend, &mut energy)
            .unwrap_err();
        assert!(matches!(
            err,
            EngineError::Backend(BackendError::CapacityExceeded { .. })
        ));
        assert!(err.to_string().contains("capacity"));
    }

    #[test]
    fn sm_ids_round_robin() {
        let mut engine = GpuEngine::with_params(FaultBuffer::new(16), 2, 16);
        assert_eq!(engine.next_sm(), SmId(0));
        assert_eq!(engine.next_sm(), SmId(1));
        assert_eq!(engine.next_sm(), SmId(0));
    }
}
