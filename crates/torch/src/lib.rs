//! Mini-PyTorch: the deep-learning-framework substrate.
//!
//! DeepUM's two optimizations depend on PyTorch internals — the CUDA
//! caching allocator's large/small pools and PT-block life cycle
//! (Section 5.2) — and its evaluation depends on nine DNN training
//! workloads (Table 2). This crate reproduces both:
//!
//! * [`alloc::CachingAllocator`] — best-fit pooled allocation with block
//!   splitting/coalescing, active/inactive PT-block state, OOM-triggered
//!   cache flush, and the inactive-block notifications DeepUM hooks;
//! * [`step`] — the workload representation: a training iteration is a
//!   sequence of allocate / kernel / free steps over named tensors, with
//!   dense and gather (data-dependent) access patterns;
//! * [`models`] — shape-faithful workload generators for the paper's
//!   models: GPT-2 XL/L, BERT Large/Base, DLRM, ResNet-152/200, DCGAN,
//!   and MobileNet;
//! * [`perf`] — the V100 kernel-time model (FLOP throughput and HBM
//!   bandwidth bound) that converts a kernel's work into virtual compute
//!   time.
//!
//! Datasets only determine tensor shapes (and DLRM's lookup
//! distribution); no numerical computation happens — the memory system
//! under study sees sizes and access order, never values.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod models;
pub mod perf;
pub mod step;

pub use alloc::{AllocError, CachingAllocator, DeviceHeap, PoolKind, SegmentSource};
pub use perf::PerfModel;
pub use step::{GatherAccess, KernelStep, Step, TensorId, TensorSpec, Workload, WorkloadBuilder};
