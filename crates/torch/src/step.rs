//! Workload representation: tensors, steps, and training iterations.
//!
//! A model is compiled (by the [`crate::models`] builders) into a
//! [`Workload`]: a set of persistent tensors (parameters, gradients,
//! optimizer state) plus the step sequence of **one training iteration**
//! (forward, backward, optimizer). The executor replays the sequence per
//! iteration; because DNN training repeats the same kernels in the same
//! order with the same shapes, this is exactly the regularity DeepUM's
//! correlation tables exploit — and DLRM's [`GatherAccess`] is exactly
//! the data-dependent irregularity they cannot.

use std::collections::HashSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Identifier of a workload tensor, dense per workload.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TensorId(pub u32);

impl TensorId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for TensorId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Size (and identity) of one tensor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorSpec {
    /// Dense workload-local identifier.
    pub id: TensorId,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// A sparse, data-dependent read of an embedding-style table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatherAccess {
    /// The table tensor being indexed.
    pub table: TensorId,
    /// Rows gathered per execution (≈ batch size × features).
    pub lookups: u32,
    /// Bytes per row.
    pub row_bytes: u32,
    /// Popularity skew of row indices (`zipf_like` exponent); 0 =
    /// uniform.
    pub skew: f64,
}

/// One kernel launch in the iteration program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStep {
    /// Stable kernel name; repeated launches of the same (name, args)
    /// combination share an execution ID.
    pub name: Arc<str>,
    /// Scalar launch arguments (shapes, batch) hashed into the identity.
    pub args: Vec<u64>,
    /// Tensors read densely (full extent, ascending address order).
    pub reads: Vec<TensorId>,
    /// Tensors written densely.
    pub writes: Vec<TensorId>,
    /// Sparse reads (DLRM embedding lookups).
    pub gathers: Vec<GatherAccess>,
    /// Floating-point work, for the compute-time model.
    pub flops: f64,
}

/// One step of the per-iteration program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Allocate a transient tensor (activation, gradient buffer).
    Alloc(TensorSpec),
    /// Release a transient tensor back to the caching allocator.
    Free(TensorId),
    /// Launch a kernel.
    Kernel(KernelStep),
}

/// A complete training workload: persistent state plus the program of one
/// iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Human-readable name, e.g. `"gpt2-xl/b7"`.
    pub name: String,
    /// Model family, e.g. `"gpt2-xl"`.
    pub model: String,
    /// Training batch size.
    pub batch: usize,
    /// Tensors allocated once before the first iteration (weights,
    /// gradients, optimizer state, embedding tables).
    pub persistent: Vec<TensorSpec>,
    /// The step program of one training iteration.
    pub steps: Vec<Step>,
}

impl Workload {
    /// Total bytes of persistent tensors.
    pub fn persistent_bytes(&self) -> u64 {
        self.persistent.iter().map(|t| t.bytes).sum()
    }

    /// Peak transient bytes live at any point of the iteration.
    pub fn peak_transient_bytes(&self) -> u64 {
        let mut live = 0u64;
        let mut peak = 0u64;
        let mut sizes = std::collections::HashMap::new();
        for step in &self.steps {
            match step {
                Step::Alloc(t) => {
                    sizes.insert(t.id, t.bytes);
                    live += t.bytes;
                    peak = peak.max(live);
                }
                Step::Free(id) => {
                    live -= sizes.get(id).copied().unwrap_or(0);
                }
                Step::Kernel(_) => {}
            }
        }
        peak
    }

    /// Peak total footprint (persistent + peak transient).
    pub fn peak_bytes(&self) -> u64 {
        self.persistent_bytes() + self.peak_transient_bytes()
    }

    /// Number of kernel launches per iteration.
    pub fn kernel_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Kernel(_)))
            .count()
    }

    /// Total FLOPs per iteration.
    pub fn total_flops(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Kernel(k) => k.flops,
                _ => 0.0,
            })
            .sum()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found: a kernel using
    /// a tensor that is not live, a double alloc/free, or a transient
    /// tensor leaked at iteration end (transients must be balanced so the
    /// program can repeat).
    pub fn validate(&self) -> Result<(), String> {
        let mut live: HashSet<TensorId> = self.persistent.iter().map(|t| t.id).collect();
        if live.len() != self.persistent.len() {
            return Err("duplicate persistent tensor id".into());
        }
        let persistent = live.clone();
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                Step::Alloc(t) => {
                    if !live.insert(t.id) {
                        return Err(format!("step {i}: alloc of live tensor {}", t.id));
                    }
                }
                Step::Free(id) => {
                    if persistent.contains(id) {
                        return Err(format!("step {i}: free of persistent tensor {id}"));
                    }
                    if !live.remove(id) {
                        return Err(format!("step {i}: free of dead tensor {id}"));
                    }
                }
                Step::Kernel(k) => {
                    for id in k.reads.iter().chain(&k.writes) {
                        if !live.contains(id) {
                            return Err(format!("step {i} ({}): uses dead tensor {id}", k.name));
                        }
                    }
                    for g in &k.gathers {
                        if !live.contains(&g.table) {
                            return Err(format!(
                                "step {i} ({}): gathers dead tensor {}",
                                k.name, g.table
                            ));
                        }
                    }
                }
            }
        }
        let leaked: Vec<_> = live.difference(&persistent).collect();
        if !leaked.is_empty() {
            return Err(format!("{} transient tensors leaked", leaked.len()));
        }
        Ok(())
    }
}

/// Incremental builder used by the model generators.
///
/// # Example
///
/// ```
/// use deepum_torch::step::WorkloadBuilder;
///
/// let mut b = WorkloadBuilder::new("toy", "toy", 4);
/// let w = b.persistent(1 << 20);
/// let act = b.alloc(1 << 16);
/// b.kernel("toy.fwd").reads(&[w]).writes(&[act]).flops(1e6).launch();
/// b.free(act);
/// let workload = b.build();
/// assert!(workload.validate().is_ok());
/// assert_eq!(workload.kernel_count(), 1);
/// ```
#[derive(Debug)]
pub struct WorkloadBuilder {
    name: String,
    model: String,
    batch: usize,
    next_id: u32,
    persistent: Vec<TensorSpec>,
    steps: Vec<Step>,
}

impl WorkloadBuilder {
    /// Starts a workload named `name` for `model` at `batch`.
    pub fn new(name: impl Into<String>, model: impl Into<String>, batch: usize) -> Self {
        WorkloadBuilder {
            name: name.into(),
            model: model.into(),
            batch,
            next_id: 0,
            persistent: Vec::new(),
            steps: Vec::new(),
        }
    }

    fn fresh(&mut self) -> TensorId {
        let id = TensorId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Declares a persistent tensor of `bytes`.
    pub fn persistent(&mut self, bytes: u64) -> TensorId {
        let id = self.fresh();
        self.persistent.push(TensorSpec { id, bytes });
        id
    }

    /// Emits an allocation of a transient tensor of `bytes`.
    pub fn alloc(&mut self, bytes: u64) -> TensorId {
        let id = self.fresh();
        self.steps.push(Step::Alloc(TensorSpec { id, bytes }));
        id
    }

    /// Emits a free of a transient tensor.
    pub fn free(&mut self, id: TensorId) {
        self.steps.push(Step::Free(id));
    }

    /// Starts a kernel step; finish with [`KernelStepBuilder::launch`].
    pub fn kernel(&mut self, name: impl Into<Arc<str>>) -> KernelStepBuilder<'_> {
        KernelStepBuilder {
            builder: self,
            step: KernelStep {
                name: name.into(),
                args: Vec::new(),
                reads: Vec::new(),
                writes: Vec::new(),
                gathers: Vec::new(),
                flops: 0.0,
            },
        }
    }

    /// Number of steps emitted so far.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Finishes the workload.
    pub fn build(self) -> Workload {
        Workload {
            name: self.name,
            model: self.model,
            batch: self.batch,
            persistent: self.persistent,
            steps: self.steps,
        }
    }
}

/// Builder for one kernel step; created by [`WorkloadBuilder::kernel`].
#[derive(Debug)]
pub struct KernelStepBuilder<'a> {
    builder: &'a mut WorkloadBuilder,
    step: KernelStep,
}

impl KernelStepBuilder<'_> {
    /// Adds scalar launch arguments (part of the kernel identity).
    pub fn args(mut self, args: &[u64]) -> Self {
        self.step.args.extend_from_slice(args);
        self
    }

    /// Adds dense read operands.
    pub fn reads(mut self, ids: &[TensorId]) -> Self {
        self.step.reads.extend_from_slice(ids);
        self
    }

    /// Adds dense write operands.
    pub fn writes(mut self, ids: &[TensorId]) -> Self {
        self.step.writes.extend_from_slice(ids);
        self
    }

    /// Adds a sparse gather over `table`.
    pub fn gather(mut self, table: TensorId, lookups: u32, row_bytes: u32, skew: f64) -> Self {
        self.step.gathers.push(GatherAccess {
            table,
            lookups,
            row_bytes,
            skew,
        });
        self
    }

    /// Sets the FLOP count.
    pub fn flops(mut self, flops: f64) -> Self {
        self.step.flops = flops;
        self
    }

    /// Emits the kernel step into the workload.
    pub fn launch(self) {
        self.builder.steps.push(Step::Kernel(self.step));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Workload {
        let mut b = WorkloadBuilder::new("toy/b2", "toy", 2);
        let w = b.persistent(10 << 20);
        let a1 = b.alloc(1 << 20);
        b.kernel("l1.fwd")
            .args(&[2])
            .reads(&[w])
            .writes(&[a1])
            .flops(1e9)
            .launch();
        let a2 = b.alloc(2 << 20);
        b.kernel("l2.fwd")
            .reads(&[a1])
            .writes(&[a2])
            .flops(2e9)
            .launch();
        b.free(a1);
        b.kernel("l2.bwd")
            .reads(&[a2])
            .writes(&[w])
            .flops(2e9)
            .launch();
        b.free(a2);
        b.build()
    }

    #[test]
    fn builder_produces_valid_workload() {
        let w = toy();
        assert!(w.validate().is_ok());
        assert_eq!(w.kernel_count(), 3);
        assert_eq!(w.persistent_bytes(), 10 << 20);
        assert!((w.total_flops() - 5e9).abs() < 1.0);
    }

    #[test]
    fn peak_accounts_for_overlap() {
        let w = toy();
        // a1 (1 MiB) and a2 (2 MiB) are simultaneously live.
        assert_eq!(w.peak_transient_bytes(), 3 << 20);
        assert_eq!(w.peak_bytes(), (10 << 20) + (3 << 20));
    }

    #[test]
    fn validate_catches_use_after_free() {
        let mut b = WorkloadBuilder::new("bad", "bad", 1);
        let a = b.alloc(1024);
        b.free(a);
        b.kernel("k").reads(&[a]).launch();
        let err = b.build().validate().unwrap_err();
        assert!(err.contains("dead tensor"), "{err}");
    }

    #[test]
    fn validate_catches_leak() {
        let mut b = WorkloadBuilder::new("bad", "bad", 1);
        let _ = b.alloc(1024);
        let err = b.build().validate().unwrap_err();
        assert!(err.contains("leaked"), "{err}");
    }

    #[test]
    fn validate_catches_double_free() {
        let mut b = WorkloadBuilder::new("bad", "bad", 1);
        let a = b.alloc(1024);
        b.free(a);
        b.free(a);
        assert!(b.build().validate().is_err());
    }

    #[test]
    fn validate_rejects_freeing_persistent() {
        let mut b = WorkloadBuilder::new("bad", "bad", 1);
        let w = b.persistent(1024);
        b.free(w);
        let err = b.build().validate().unwrap_err();
        assert!(err.contains("persistent"), "{err}");
    }

    #[test]
    fn gather_tables_must_be_live() {
        let mut b = WorkloadBuilder::new("bad", "bad", 1);
        b.kernel("k").gather(TensorId(99), 10, 512, 1.1).launch();
        assert!(b.build().validate().is_err());
    }
}
