//! The PyTorch CUDA caching allocator (paper Section 5.2).
//!
//! "PyTorch's GPU memory allocator manages device memory pools to
//! minimize memory allocation/free time and to reduce memory
//! fragmentation. Two types of memory pools are managed: *large* and
//! *small*. [...] When multiple PT blocks in the pool match the
//! requested size, the allocator returns the smallest available PT
//! block. In addition, the PT block is split when its size is much
//! larger than the requested size."
//!
//! This reproduction implements the allocator's observable behaviour:
//!
//! * size rounding (512 B in the small pool, 2 MiB in the large pool);
//! * pool selection at the 1 MiB boundary;
//! * best-fit over inactive PT blocks, with splitting;
//! * segment acquisition from an abstract [`SegmentSource`] (UM space
//!   for DeepUM, raw device memory for the non-UM baselines) — 2 MiB
//!   segments for the small pool, 20 MiB for mid-size requests, exact
//!   for large ones, as in PyTorch's `kSmallBuffer`/`kLargeBuffer`;
//! * coalescing of adjacent inactive blocks within a segment;
//! * cache flush on OOM, then one retry;
//! * the **active/inactive notifications** DeepUM's invalidation
//!   optimization hooks ([`PtEvent`]).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use deepum_mem::{ByteRange, UmAddr};
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use deepum_um::space::{UmAllocError, UmSpace};
use serde::{Deserialize, Serialize};

/// Requests ≤ 1 MiB go to the small pool.
pub const SMALL_LIMIT: u64 = 1 << 20;
/// Small-pool sizes round up to 512 B.
pub const SMALL_ROUND: u64 = 512;
/// Large-pool sizes round up to 2 MiB.
pub const LARGE_ROUND: u64 = 2 << 20;
/// Small-pool segments are 2 MiB.
pub const SMALL_SEGMENT: u64 = 2 << 20;
/// Requests in (1 MiB, 10 MiB] are served from 20 MiB segments.
pub const MEDIUM_LIMIT: u64 = 10 << 20;
/// Segment size for mid-size requests.
pub const LARGE_SEGMENT: u64 = 20 << 20;
/// A large block is split when the remainder is at least this big.
pub const LARGE_SPLIT_REMAINDER: u64 = 1 << 20;

/// Which pool a PT block belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// PT blocks ≤ 1 MiB.
    Small,
    /// PT blocks > 1 MiB.
    Large,
}

/// Identifier of a PT block.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PtBlockId(u64);

impl PtBlockId {
    /// Raw id value, for checkpoint codecs.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds an id captured by [`Self::raw`]. Only meaningful for
    /// ids that came from the same allocator state the checkpoint
    /// restores.
    pub fn from_raw(v: u64) -> Self {
        PtBlockId(v)
    }
}

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The segment source is exhausted even after flushing the cache —
    /// PyTorch's `CUDA out of memory` error.
    OutOfMemory {
        /// Bytes requested (after rounding).
        requested: u64,
    },
    /// Zero-byte request.
    ZeroSize,
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::OutOfMemory { requested } => {
                write!(f, "CUDA out of memory: tried to allocate {requested} bytes")
            }
            AllocError::ZeroSize => write!(f, "zero-byte allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocator → driver notification (the "few lines of code" added to the
/// PyTorch allocator, Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtEvent {
    /// A PT block became active: its pages hold live data again and must
    /// no longer be invalidated on eviction.
    Active(ByteRange),
    /// A PT block became inactive: its pages may be dropped without
    /// write-back when chosen as eviction victims.
    Inactive(ByteRange),
    /// A whole segment was returned to the memory source (cache flush);
    /// any residency for these addresses is meaningless now.
    Released(ByteRange),
}

/// Where the allocator gets segments from.
///
/// For DeepUM and naive UM this is the UM space (host-memory bound); for
/// the tensor-swapping baselines it is raw device memory (device bound —
/// which is why they hit fragmentation OOMs that UM avoids, Table 3).
pub trait SegmentSource {
    /// Acquires a contiguous segment of exactly `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::OutOfMemory`] when the source cannot satisfy
    /// the request.
    fn alloc_segment(&mut self, bytes: u64) -> Result<ByteRange, AllocError>;

    /// Returns a segment previously acquired.
    fn free_segment(&mut self, range: ByteRange);
}

impl SegmentSource for UmSpace {
    fn alloc_segment(&mut self, bytes: u64) -> Result<ByteRange, AllocError> {
        self.alloc(bytes).map_err(|e| match e {
            UmAllocError::OutOfMemory { requested, .. } => AllocError::OutOfMemory { requested },
            UmAllocError::ZeroSize => AllocError::ZeroSize,
        })
    }

    fn free_segment(&mut self, range: ByteRange) {
        self.free(range);
    }
}

/// Raw device memory as a segment source: the non-UM baselines'
/// configuration (`cudaMalloc` on plain device memory).
///
/// Only *physical* capacity bounds allocation — the CUDA VA space is
/// effectively unlimited, so segment addresses are handed out from a
/// monotone bump pointer and never constrain placement. Fragmentation
/// for these systems therefore lives where it does in reality: inside
/// the caching allocator's partially-used segments, which
/// [`CachingAllocator::empty_cache`] cannot release while any PT block
/// in them is active.
#[derive(Debug, Clone)]
pub struct DeviceHeap {
    capacity: u64,
    allocated: u64,
    next_va: u64,
}

impl DeviceHeap {
    /// Creates a heap of `capacity` bytes of device memory.
    pub fn new(capacity: u64) -> Self {
        DeviceHeap {
            capacity,
            allocated: 0,
            next_va: 0,
        }
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }
}

impl SegmentSource for DeviceHeap {
    fn alloc_segment(&mut self, bytes: u64) -> Result<ByteRange, AllocError> {
        if bytes == 0 {
            return Err(AllocError::ZeroSize);
        }
        if self.allocated + bytes > self.capacity {
            return Err(AllocError::OutOfMemory { requested: bytes });
        }
        self.allocated += bytes;
        let start = self.next_va;
        // Keep segments block-aligned so PT blocks never straddle UM
        // blocks in mixed setups.
        self.next_va =
            (start + bytes).div_ceil(crate::alloc::LARGE_ROUND) * crate::alloc::LARGE_ROUND;
        Ok(ByteRange::new(UmAddr::new(start), bytes))
    }

    fn free_segment(&mut self, range: ByteRange) {
        debug_assert!(self.allocated >= range.len());
        self.allocated -= range.len();
    }
}

/// Segments from the interposed CUDA runtime (`cudaMalloc` → UM space),
/// the DeepUM / naive-UM configuration.
impl SegmentSource for deepum_runtime::interpose::CudaRuntime {
    fn alloc_segment(&mut self, bytes: u64) -> Result<ByteRange, AllocError> {
        self.malloc_managed(bytes).map_err(|e| match e {
            UmAllocError::OutOfMemory { requested, .. } => AllocError::OutOfMemory { requested },
            UmAllocError::ZeroSize => AllocError::ZeroSize,
        })
    }

    fn free_segment(&mut self, range: ByteRange) {
        self.free_managed(range);
    }
}

#[derive(Debug, Clone)]
struct PtBlock {
    range: ByteRange,
    segment: u64,
    pool: PoolKind,
    active: bool,
}

#[derive(Debug, Clone)]
struct Segment {
    range: ByteRange,
}

/// The caching allocator.
///
/// # Example
///
/// ```
/// use deepum_torch::alloc::CachingAllocator;
/// use deepum_um::space::UmSpace;
///
/// let mut source = UmSpace::new(64 << 20);
/// let mut alloc = CachingAllocator::new();
/// let mut events = Vec::new();
/// let (block, range) = alloc.alloc(3 << 20, &mut source, &mut events)?;
/// assert!(range.len() >= 3 << 20);
/// alloc.free(block, &mut events);
/// # Ok::<(), deepum_torch::alloc::AllocError>(())
/// ```
#[derive(Debug, Default)]
pub struct CachingAllocator {
    next_id: u64,
    blocks: HashMap<PtBlockId, PtBlock>,
    /// Inactive blocks per pool, keyed for best-fit (size, id).
    free_small: BTreeSet<(u64, PtBlockId)>,
    free_large: BTreeSet<(u64, PtBlockId)>,
    /// Every block by start address, for neighbour coalescing.
    by_addr: BTreeMap<u64, PtBlockId>,
    segments: HashMap<u64, Segment>,
    active_bytes: u64,
    reserved_bytes: u64,
}

impl CachingAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes in active PT blocks.
    pub fn active_bytes(&self) -> u64 {
        self.active_bytes
    }

    /// Bytes in segments held from the source (active + cached).
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved_bytes
    }

    /// Bytes cached in inactive PT blocks.
    pub fn cached_bytes(&self) -> u64 {
        self.reserved_bytes - self.active_bytes
    }

    /// Number of segments held.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of inactive PT blocks across both pools.
    pub fn inactive_blocks(&self) -> usize {
        self.free_small.len() + self.free_large.len()
    }

    /// The address range of a live PT block.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist.
    pub fn range_of(&self, block: PtBlockId) -> ByteRange {
        self.blocks[&block].range
    }

    fn rounded(bytes: u64) -> u64 {
        if bytes <= SMALL_LIMIT {
            bytes.div_ceil(SMALL_ROUND) * SMALL_ROUND
        } else {
            bytes.div_ceil(LARGE_ROUND) * LARGE_ROUND
        }
    }

    fn pool_of(rounded: u64) -> PoolKind {
        if rounded <= SMALL_LIMIT {
            PoolKind::Small
        } else {
            PoolKind::Large
        }
    }

    fn split_remainder(pool: PoolKind) -> u64 {
        match pool {
            PoolKind::Small => SMALL_ROUND,
            PoolKind::Large => LARGE_SPLIT_REMAINDER,
        }
    }

    fn free_set(&mut self, pool: PoolKind) -> &mut BTreeSet<(u64, PtBlockId)> {
        match pool {
            PoolKind::Small => &mut self.free_small,
            PoolKind::Large => &mut self.free_large,
        }
    }

    /// Allocates a PT block of at least `bytes`, notifying state changes
    /// through `events`. On source exhaustion the cache is flushed and
    /// the segment allocation retried once (PyTorch's OOM recovery).
    ///
    /// # Errors
    ///
    /// [`AllocError::ZeroSize`] for `bytes == 0`;
    /// [`AllocError::OutOfMemory`] when the source remains exhausted
    /// after the cache flush.
    pub fn alloc(
        &mut self,
        bytes: u64,
        source: &mut dyn SegmentSource,
        events: &mut Vec<PtEvent>,
    ) -> Result<(PtBlockId, ByteRange), AllocError> {
        if bytes == 0 {
            return Err(AllocError::ZeroSize);
        }
        let size = Self::rounded(bytes);
        let pool = Self::pool_of(size);

        // Best fit: the smallest inactive block that fits.
        let found = self
            .free_set(pool)
            .range((size, PtBlockId(0))..)
            .next()
            .copied();
        let id = match found {
            Some(key) => {
                self.free_set(pool).remove(&key);
                let id = key.1;
                self.maybe_split(id, size);
                id
            }
            None => {
                let segment_size = match size {
                    s if s <= SMALL_LIMIT => SMALL_SEGMENT,
                    s if s <= MEDIUM_LIMIT => LARGE_SEGMENT,
                    s => s,
                };
                let seg_range = match source.alloc_segment(segment_size) {
                    Ok(r) => r,
                    Err(AllocError::OutOfMemory { .. }) => {
                        // PyTorch: free cached blocks and retry once.
                        self.empty_cache(source, events);
                        source.alloc_segment(segment_size)?
                    }
                    Err(e) => return Err(e),
                };
                self.reserved_bytes += seg_range.len();
                self.segments
                    .insert(seg_range.start().raw(), Segment { range: seg_range });
                let id = self.insert_block(seg_range, seg_range.start().raw(), pool);
                self.maybe_split(id, size);
                id
            }
        };

        let block = self.blocks.get_mut(&id).expect("block exists");
        debug_assert!(!block.active);
        block.active = true;
        let range = block.range;
        self.active_bytes += range.len();
        events.push(PtEvent::Active(range));
        Ok((id, range))
    }

    /// Returns a PT block to its pool, coalescing with inactive
    /// neighbours in the same segment.
    ///
    /// # Panics
    ///
    /// Panics on double free or an unknown block id.
    pub fn free(&mut self, id: PtBlockId, events: &mut Vec<PtEvent>) {
        let block = self.blocks.get_mut(&id).expect("free of unknown PT block");
        assert!(block.active, "double free of PT block");
        block.active = false;
        let range = block.range;
        let pool = block.pool;
        let segment = block.segment;
        self.active_bytes -= range.len();
        events.push(PtEvent::Inactive(range));

        // Coalesce with the previous neighbour if inactive.
        let mut id = id;
        let mut range = range;
        if let Some((&prev_start, &prev_id)) = self.by_addr.range(..range.start().raw()).next_back()
        {
            let prev = &self.blocks[&prev_id];
            if !prev.active
                && prev.segment == segment
                && prev_start + prev.range.len() == range.start().raw()
            {
                let merged = ByteRange::new(prev.range.start(), prev.range.len() + range.len());
                self.remove_free_entry(prev_id);
                self.by_addr.remove(&range.start().raw());
                self.blocks.remove(&id);
                let prev = self.blocks.get_mut(&prev_id).expect("prev exists");
                prev.range = merged;
                id = prev_id;
                range = merged;
            }
        }
        // Coalesce with the next neighbour if inactive.
        if let Some((&next_start, &next_id)) = self.by_addr.range(range.end().raw()..).next() {
            let next = &self.blocks[&next_id];
            if !next.active && next.segment == segment && next_start == range.end().raw() {
                let merged = ByteRange::new(range.start(), range.len() + next.range.len());
                self.remove_free_entry(next_id);
                self.by_addr.remove(&next_start);
                self.blocks.remove(&next_id);
                let blk = self.blocks.get_mut(&id).expect("block exists");
                blk.range = merged;
                range = merged;
            }
        }

        self.free_set(pool).insert((range.len(), id));
    }

    /// Releases every segment that is entirely cached (one inactive block
    /// spanning it) back to the source. Returns the bytes released.
    /// This is PyTorch's `emptyCache`, run automatically on OOM and
    /// periodically by the LMS-mod baseline.
    pub fn empty_cache(
        &mut self,
        source: &mut dyn SegmentSource,
        events: &mut Vec<PtEvent>,
    ) -> u64 {
        let mut released = 0u64;
        let seg_starts: Vec<u64> = self.segments.keys().copied().collect();
        for seg_start in seg_starts {
            let seg = self.segments[&seg_start].clone();
            // The segment is releasable iff a single inactive block
            // covers it exactly.
            let Some(&id) = self.by_addr.get(&seg_start) else {
                continue;
            };
            let block = &self.blocks[&id];
            if block.active || block.range != seg.range {
                continue;
            }
            self.remove_free_entry(id);
            self.by_addr.remove(&seg_start);
            self.blocks.remove(&id);
            self.segments.remove(&seg_start);
            self.reserved_bytes -= seg.range.len();
            released += seg.range.len();
            source.free_segment(seg.range);
            events.push(PtEvent::Released(seg.range));
        }
        released
    }

    fn insert_block(&mut self, range: ByteRange, segment: u64, pool: PoolKind) -> PtBlockId {
        let id = PtBlockId(self.next_id);
        self.next_id += 1;
        self.blocks.insert(
            id,
            PtBlock {
                range,
                segment,
                pool,
                active: false,
            },
        );
        self.by_addr.insert(range.start().raw(), id);
        id
    }

    /// Splits `id` (inactive, not in a free set) down to `size`, putting
    /// the remainder back in the pool.
    fn maybe_split(&mut self, id: PtBlockId, size: u64) {
        let block = &self.blocks[&id];
        let pool = block.pool;
        let remainder = block.range.len() - size;
        if remainder < Self::split_remainder(pool) {
            return;
        }
        let (head, segment) = {
            let block = self.blocks.get_mut(&id).expect("block exists");
            let head = ByteRange::new(block.range.start(), size);
            let seg = block.segment;
            block.range = head;
            (head, seg)
        };
        let tail = ByteRange::new(UmAddr::new(head.end().raw()), remainder);
        let tail_id = self.insert_block(tail, segment, pool);
        self.free_set(pool).insert((remainder, tail_id));
    }

    fn remove_free_entry(&mut self, id: PtBlockId) {
        let (len, pool) = {
            let b = &self.blocks[&id];
            (b.range.len(), b.pool)
        };
        self.free_set(pool).remove(&(len, id));
    }

    /// Serializes the allocator — segments, PT-block map, counters — into
    /// one snapshot envelope (DESIGN.md §11). `HashMap` contents are
    /// written in sorted-key order so the encoding is byte-stable.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.u64(self.next_id);
        w.u64(self.active_bytes);
        w.u64(self.reserved_bytes);

        let mut seg_starts: Vec<u64> = self.segments.keys().copied().collect();
        seg_starts.sort_unstable();
        w.u64(deepum_mem::u64_from_usize(seg_starts.len()));
        for start in seg_starts {
            let seg = &self.segments[&start];
            w.u64(start);
            w.u64(seg.range.start().raw());
            w.u64(seg.range.len());
        }

        let mut ids: Vec<PtBlockId> = self.blocks.keys().copied().collect();
        ids.sort_unstable();
        w.u64(deepum_mem::u64_from_usize(ids.len()));
        for id in ids {
            let b = &self.blocks[&id];
            w.u64(id.0);
            w.u64(b.range.start().raw());
            w.u64(b.range.len());
            w.u64(b.segment);
            w.u8(match b.pool {
                PoolKind::Small => 0,
                PoolKind::Large => 1,
            });
            w.bool(b.active);
        }
        w.finish()
    }

    /// Restores allocator state written by [`CachingAllocator::snapshot`].
    /// The free lists and address index are rebuilt from the block map
    /// (every inactive block sits in its pool's free set at a kernel
    /// boundary, where checkpoints are taken).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from decoding, or [`SnapshotError::Corrupt`]
    /// when the decoded blocks contradict the recorded byte counters or
    /// repeat an ID/start address; on error the allocator is unchanged.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let next_id = r.u64()?;
        let active_bytes = r.u64()?;
        let reserved_bytes = r.u64()?;

        let num_segments = r.len_prefix(24)?;
        let mut segments = HashMap::with_capacity(num_segments);
        let mut segment_bytes = 0u64;
        for _ in 0..num_segments {
            let key = r.u64()?;
            let start = r.u64()?;
            let len = r.u64()?;
            segment_bytes = segment_bytes.saturating_add(len);
            let seg = Segment {
                range: ByteRange::new(UmAddr::new(start), len),
            };
            if segments.insert(key, seg).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "segment start {key:#x} appears twice"
                )));
            }
        }
        if segment_bytes != reserved_bytes {
            return Err(SnapshotError::Corrupt(format!(
                "segment bytes {segment_bytes} != recorded reserved bytes {reserved_bytes}"
            )));
        }

        let num_blocks = r.len_prefix(34)?;
        let mut blocks = HashMap::with_capacity(num_blocks);
        let mut by_addr = BTreeMap::new();
        let mut free_small = BTreeSet::new();
        let mut free_large = BTreeSet::new();
        let mut active_sum = 0u64;
        for _ in 0..num_blocks {
            let id = PtBlockId(r.u64()?);
            let start = r.u64()?;
            let len = r.u64()?;
            let segment = r.u64()?;
            let pool = match r.u8()? {
                0 => PoolKind::Small,
                1 => PoolKind::Large,
                other => return Err(SnapshotError::Corrupt(format!("unknown pool tag {other}"))),
            };
            let active = r.bool()?;
            if id.0 >= next_id {
                return Err(SnapshotError::Corrupt(format!(
                    "block id {} >= next id {next_id}",
                    id.0
                )));
            }
            if active {
                active_sum = active_sum.saturating_add(len);
            } else {
                match pool {
                    PoolKind::Small => free_small.insert((len, id)),
                    PoolKind::Large => free_large.insert((len, id)),
                };
            }
            if by_addr.insert(start, id).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "block start {start:#x} appears twice"
                )));
            }
            let block = PtBlock {
                range: ByteRange::new(UmAddr::new(start), len),
                segment,
                pool,
                active,
            };
            if blocks.insert(id, block).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "block id {} appears twice",
                    id.0
                )));
            }
        }
        if active_sum != active_bytes {
            return Err(SnapshotError::Corrupt(format!(
                "active block bytes {active_sum} != recorded active bytes {active_bytes}"
            )));
        }
        r.finish()?;

        self.next_id = next_id;
        self.active_bytes = active_bytes;
        self.reserved_bytes = reserved_bytes;
        self.segments = segments;
        self.blocks = blocks;
        self.by_addr = by_addr;
        self.free_small = free_small;
        self.free_large = free_large;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(cap_mb: u64) -> (UmSpace, CachingAllocator, Vec<PtEvent>) {
        (
            UmSpace::new(cap_mb << 20),
            CachingAllocator::new(),
            Vec::new(),
        )
    }

    #[test]
    fn small_requests_round_to_512() {
        let (mut src, mut a, mut ev) = setup(64);
        let (_, r) = a.alloc(100, &mut src, &mut ev).unwrap();
        assert_eq!(r.len(), 512);
        assert_eq!(a.active_bytes(), 512);
        // Small pool reserves a whole 2 MiB segment.
        assert_eq!(a.reserved_bytes(), SMALL_SEGMENT);
    }

    #[test]
    fn large_requests_round_to_2mb() {
        let (mut src, mut a, mut ev) = setup(64);
        let (_, r) = a.alloc((1 << 20) + 1, &mut src, &mut ev).unwrap();
        assert_eq!(r.len(), 2 << 20);
    }

    #[test]
    fn mid_size_requests_get_20mb_segments() {
        let (mut src, mut a, mut ev) = setup(64);
        let (_, r) = a.alloc(3 << 20, &mut src, &mut ev).unwrap();
        assert_eq!(r.len(), 4 << 20); // rounded... no: 3MB rounds to 4MB
        assert_eq!(a.reserved_bytes(), LARGE_SEGMENT);
        // The 16 MiB remainder is cached.
        assert_eq!(a.cached_bytes(), LARGE_SEGMENT - (4 << 20));
    }

    #[test]
    fn huge_requests_get_exact_segments() {
        let (mut src, mut a, mut ev) = setup(128);
        let (_, r) = a.alloc(50 << 20, &mut src, &mut ev).unwrap();
        assert_eq!(r.len(), 50 << 20);
        assert_eq!(a.reserved_bytes(), 50 << 20);
    }

    #[test]
    fn free_and_reuse_is_best_fit() {
        // Sizes above 10 MiB get exact segments, so the two blocks are
        // independent and best-fit is observable.
        let (mut src, mut a, mut ev) = setup(256);
        let (b1, r1) = a.alloc(16 << 20, &mut src, &mut ev).unwrap();
        let (b2, r2) = a.alloc(12 << 20, &mut src, &mut ev).unwrap();
        a.free(b1, &mut ev);
        a.free(b2, &mut ev);
        // An 11 MiB request (rounds to 12 MiB) best-fits the 12 MiB block.
        let (_, r3) = a.alloc(11 << 20, &mut src, &mut ev).unwrap();
        assert_eq!(r3.start(), r2.start());
        assert_ne!(r3.start(), r1.start());
    }

    #[test]
    fn split_produces_cached_remainder() {
        let (mut src, mut a, mut ev) = setup(256);
        let (b1, _) = a.alloc(18 << 20, &mut src, &mut ev).unwrap();
        a.free(b1, &mut ev);
        let before_segments = a.segment_count();
        // 2 MiB out of the cached 20 MiB segment: split, no new segment.
        let (_, r) = a.alloc(2 << 20, &mut src, &mut ev).unwrap();
        assert_eq!(r.len(), 2 << 20);
        assert_eq!(a.segment_count(), before_segments);
        assert!(a.cached_bytes() >= 16 << 20);
    }

    #[test]
    fn coalescing_rebuilds_big_blocks() {
        let (mut src, mut a, mut ev) = setup(256);
        let (b1, _) = a.alloc(20 << 20, &mut src, &mut ev).unwrap();
        a.free(b1, &mut ev);
        let (c1, _) = a.alloc(6 << 20, &mut src, &mut ev).unwrap();
        let (c2, _) = a.alloc(6 << 20, &mut src, &mut ev).unwrap();
        let (c3, _) = a.alloc(8 << 20, &mut src, &mut ev).unwrap();
        assert_eq!(a.segment_count(), 1);
        a.free(c1, &mut ev);
        a.free(c3, &mut ev);
        a.free(c2, &mut ev); // middle free merges all three
        assert_eq!(a.inactive_blocks(), 1);
        // The whole 20 MiB is one block again.
        let (_, r) = a.alloc(20 << 20, &mut src, &mut ev).unwrap();
        assert_eq!(r.len(), 20 << 20);
    }

    #[test]
    fn oom_flushes_cache_and_retries() {
        let (mut src, mut a, mut ev) = setup(32);
        let (b1, _) = a.alloc(30 << 20, &mut src, &mut ev).unwrap();
        a.free(b1, &mut ev);
        // Source is fully reserved by the cached 30 MiB segment; a
        // request too big for the cached block forces a flush-and-retry.
        let got = a.alloc(31 << 20, &mut src, &mut ev);
        assert!(got.is_ok());
        assert!(ev.iter().any(|e| matches!(e, PtEvent::Released(_))));
    }

    #[test]
    fn oom_surfaces_when_flush_insufficient() {
        let (mut src, mut a, mut ev) = setup(16);
        let err = a.alloc(64 << 20, &mut src, &mut ev).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }

    #[test]
    fn events_track_block_lifecycle() {
        let (mut src, mut a, mut ev) = setup(64);
        let (b, r) = a.alloc(2 << 20, &mut src, &mut ev).unwrap();
        assert!(ev.contains(&PtEvent::Active(r)));
        ev.clear();
        a.free(b, &mut ev);
        assert!(ev.contains(&PtEvent::Inactive(r)));
    }

    #[test]
    fn empty_cache_releases_only_fully_inactive_segments() {
        let (mut src, mut a, mut ev) = setup(256);
        let (b1, _) = a.alloc(20 << 20, &mut src, &mut ev).unwrap();
        let (_b2, _) = a.alloc(2 << 20, &mut src, &mut ev).unwrap(); // splits a new segment
        a.free(b1, &mut ev);
        let released = a.empty_cache(&mut src, &mut ev);
        assert_eq!(released, 20 << 20);
        // The second segment still has an active block; kept.
        assert_eq!(a.segment_count(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let (mut src, mut a, mut ev) = setup(64);
        let (b, _) = a.alloc(1024, &mut src, &mut ev).unwrap();
        a.free(b, &mut ev);
        a.free(b, &mut ev);
    }

    #[test]
    fn small_pool_carves_from_2mb_segments() {
        let (mut src, mut a, mut ev) = setup(64);
        let mut blocks = Vec::new();
        for _ in 0..8 {
            blocks.push(a.alloc(100 << 10, &mut src, &mut ev).unwrap());
        }
        // Eight 100 KiB (rounded) blocks fit in one 2 MiB segment.
        assert_eq!(a.segment_count(), 1);
    }

    #[test]
    fn zero_size_rejected() {
        let (mut src, mut a, mut ev) = setup(64);
        assert_eq!(
            a.alloc(0, &mut src, &mut ev).unwrap_err(),
            AllocError::ZeroSize
        );
    }

    /// Allocator with a mixed, split, partially-freed state.
    fn busy_allocator() -> (UmSpace, CachingAllocator, Vec<PtBlockId>) {
        let (mut src, mut a, mut ev) = setup(256);
        let mut live = Vec::new();
        let (b1, _) = a.alloc(20 << 20, &mut src, &mut ev).unwrap();
        let (b2, _) = a.alloc(2 << 20, &mut src, &mut ev).unwrap();
        let (b3, _) = a.alloc(100 << 10, &mut src, &mut ev).unwrap();
        let (b4, _) = a.alloc(300, &mut src, &mut ev).unwrap();
        a.free(b1, &mut ev);
        a.free(b4, &mut ev);
        live.push(b2);
        live.push(b3);
        (src, a, live)
    }

    #[test]
    fn snapshot_round_trip_preserves_behaviour() {
        let (mut src, mut a, live) = busy_allocator();
        let bytes = a.snapshot();

        let mut restored = CachingAllocator::new();
        restored.restore(&bytes).expect("restore succeeds");
        assert_eq!(restored.active_bytes(), a.active_bytes());
        assert_eq!(restored.reserved_bytes(), a.reserved_bytes());
        assert_eq!(restored.segment_count(), a.segment_count());
        assert_eq!(restored.inactive_blocks(), a.inactive_blocks());
        for &b in &live {
            assert_eq!(restored.range_of(b), a.range_of(b));
        }
        // Re-snapshot is byte-identical, and both allocators serve the
        // next allocation identically.
        assert_eq!(restored.snapshot(), bytes);
        let mut ev = Vec::new();
        let got_a = a.alloc(5 << 20, &mut src, &mut ev).unwrap();
        let got_r = restored.alloc(5 << 20, &mut src, &mut ev).unwrap();
        assert_eq!(got_a, got_r);
        assert_eq!(a.snapshot(), restored.snapshot());
    }

    #[test]
    fn restore_rejects_counter_mismatch() {
        let (_src, a, _live) = busy_allocator();
        let bytes = a.snapshot();
        // Corrupting active_bytes re-seals cleanly but fails validation.
        let mut body = bytes[..bytes.len() - 8].to_vec();
        body[12 + 8..12 + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut resealed = body.clone();
        let mut w = 0xcbf2_9ce4_8422_2325u64;
        for &byte in &body {
            w ^= u64::from(byte);
            w = w.wrapping_mul(0x0000_0100_0000_01b3);
        }
        resealed.extend_from_slice(&w.to_le_bytes());
        let mut restored = CachingAllocator::new();
        assert!(matches!(
            restored.restore(&resealed),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn restore_rejects_bit_flip() {
        let (_src, a, _live) = busy_allocator();
        let mut bytes = a.snapshot();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        let mut restored = CachingAllocator::new();
        assert!(restored.restore(&bytes).is_err());
    }
}
