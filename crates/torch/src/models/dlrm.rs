//! DLRM (Deep Learning Recommendation Model) on Criteo Kaggle.
//!
//! DLRM is the paper's irregular workload: "most of the memory space is
//! used to store embedding tables [and] its memory access pattern is
//! irregular because the embedding table lookups highly depend on the
//! input data. This is why prefetching strategies of both LMS and DeepUM
//! do not work well." The gathers here carry that data-dependence into
//! the simulator: each iteration samples skewed random rows.

use crate::step::{TensorId, Workload, WorkloadBuilder};

const F32: u64 = 4;
/// Embedding dimension (MLPerf DLRM configuration).
const EMBED_DIM: u64 = 128;
/// Popularity skew of Criteo categorical values.
const SKEW: f64 = 1.05;

/// Row counts of the 26 Criteo Kaggle categorical features
/// (approximate published cardinalities; the long-tailed mix is what
/// matters for the access pattern).
const TABLE_ROWS: [u64; 26] = [
    10_131_227, 8_351_593, 3_194, 27, 14_992, 5_461_306, 10, 5_652, 2_173, 4, 7_046_547, 18, 15,
    286_181, 105, 142_572, 10, 968, 15, 9_994_222, 7_158_650, 9_946_608, 415_421, 12_420, 101, 36,
];

/// Builds one DLRM training iteration at `batch`.
pub fn dlrm(batch: usize) -> Workload {
    assert!(batch > 0);
    let mut b = WorkloadBuilder::new(format!("dlrm/b{batch}"), "dlrm", batch);
    let bt = batch as u64;

    // Embedding tables (persistent; updated sparsely with SGD, so no
    // dense optimizer state).
    let tables: Vec<TensorId> = TABLE_ROWS
        .iter()
        .map(|&rows| b.persistent(rows * EMBED_DIM * F32))
        .collect();

    // Dense MLPs with Adam state.
    struct Mlp {
        layers: Vec<(TensorId, TensorId, TensorId, TensorId, u64)>, // w,g,m,v,bytes
        dims: Vec<u64>,
    }
    let mlp = |b: &mut WorkloadBuilder, dims: &[u64]| -> Mlp {
        let layers = dims
            .windows(2)
            .map(|d| {
                let bytes = d[0] * d[1] * F32;
                (
                    b.persistent(bytes),
                    b.persistent(bytes),
                    b.persistent(bytes),
                    b.persistent(bytes),
                    bytes,
                )
            })
            .collect();
        Mlp {
            layers,
            dims: dims.to_vec(),
        }
    };
    let bottom = mlp(&mut b, &[13, 512, 256, EMBED_DIM]);
    // Interaction output: pairwise dots of 27 feature vectors + dense.
    let interact_dim = EMBED_DIM + (27 * 26) / 2;
    let top = mlp(&mut b, &[interact_dim, 1024, 1024, 512, 256, 1]);

    let run_mlp_fwd = |b: &mut WorkloadBuilder, name: &str, m: &Mlp, mut x: TensorId| {
        let mut acts = vec![x];
        for (i, (w, _, _, _, bytes)) in m.layers.iter().enumerate() {
            let out = b.alloc(bt * m.dims[i + 1] * F32);
            b.kernel(format!("{name}.l{i}.fwd"))
                .args(&[bt])
                .reads(&[x, *w])
                .writes(&[out])
                .flops((2 * bt * (bytes / F32)) as f64)
                .launch();
            x = out;
            acts.push(out);
        }
        acts
    };

    // ---- Forward ----
    let dense_in = b.alloc(bt * 13 * F32);
    b.kernel("input.dense")
        .writes(&[dense_in])
        .flops((bt * 13) as f64)
        .launch();
    let bottom_acts = run_mlp_fwd(&mut b, "bottom", &bottom, dense_in);

    // Embedding lookups: one gather per table, batch rows each.
    let emb_out = b.alloc(bt * 26 * EMBED_DIM * F32);
    {
        let mut k = b
            .kernel("embed.lookup")
            .args(&[bt])
            .writes(&[emb_out])
            .flops((bt * 26 * EMBED_DIM) as f64);
        for &t in &tables {
            k = k.gather(
                t,
                bt.min(u32::MAX as u64) as u32,
                (EMBED_DIM * F32) as u32,
                SKEW,
            );
        }
        k.launch();
    }

    let interact = b.alloc(bt * interact_dim * F32);
    b.kernel("interact.fwd")
        .reads(&[*bottom_acts.last().unwrap(), emb_out])
        .writes(&[interact])
        .flops((bt * 27 * 27 * EMBED_DIM) as f64)
        .launch();

    let top_acts = run_mlp_fwd(&mut b, "top", &top, interact);

    // ---- Backward ----
    let mut grad = b.alloc(bt * F32);
    b.kernel("loss.bwd")
        .reads(&[*top_acts.last().unwrap()])
        .writes(&[grad])
        .flops((bt * 4) as f64)
        .launch();

    let run_mlp_bwd =
        |b: &mut WorkloadBuilder, name: &str, m: &Mlp, acts: &[TensorId], mut grad: TensorId| {
            for (i, (w, g, _, _, bytes)) in m.layers.iter().enumerate().rev() {
                let grad_in = b.alloc(bt * m.dims[i] * F32);
                b.kernel(format!("{name}.l{i}.bwd"))
                    .reads(&[grad, acts[i], *w])
                    .writes(&[grad_in, *g])
                    .flops((4 * bt * (bytes / F32)) as f64)
                    .launch();
                b.free(grad);
                if i + 1 < m.layers.len() {
                    b.free(acts[i + 1]);
                }
                grad = grad_in;
            }
            grad
        };

    let grad_interact = run_mlp_bwd(&mut b, "top", &top, &top_acts, grad);
    b.free(*top_acts.last().unwrap());

    let grad_bottom_out = b.alloc(bt * EMBED_DIM * F32);
    let grad_emb = b.alloc(bt * 26 * EMBED_DIM * F32);
    b.kernel("interact.bwd")
        .reads(&[grad_interact, *bottom_acts.last().unwrap(), emb_out])
        .writes(&[grad_bottom_out, grad_emb])
        .flops((bt * 27 * 27 * EMBED_DIM * 2) as f64)
        .launch();
    b.free(grad_interact);
    b.free(interact);
    b.free(emb_out);

    // Sparse embedding update: scatter back into the same rows.
    {
        let mut k = b
            .kernel("embed.update")
            .args(&[bt])
            .reads(&[grad_emb])
            .flops((bt * 26 * EMBED_DIM * 2) as f64);
        for &t in &tables {
            k = k.gather(
                t,
                bt.min(u32::MAX as u64) as u32,
                (EMBED_DIM * F32) as u32,
                SKEW,
            );
        }
        k.launch();
    }
    b.free(grad_emb);

    grad = run_mlp_bwd(&mut b, "bottom", &bottom, &bottom_acts, grad_bottom_out);
    b.free(*bottom_acts.last().unwrap());
    b.free(grad);
    b.free(dense_in); // bottom_acts[0]

    // ---- Dense optimizer ----
    for (name, m) in [("bottom", &bottom), ("top", &top)] {
        for (i, (w, g, mm, vv, bytes)) in m.layers.iter().enumerate() {
            let n = bytes / F32;
            b.kernel(format!("{name}.l{i}.adam"))
                .reads(&[*g, *mm, *vv])
                .writes(&[*w, *mm, *vv])
                .flops(10.0 * n as f64)
                .launch();
        }
    }

    let w = b.build();
    debug_assert!(w.validate().is_ok(), "{:?}", w.validate());
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_dominate_memory() {
        let w = dlrm(4096);
        w.validate().unwrap();
        // 33.8M rows × 512 B ≈ 17 GB of tables.
        assert!(w.persistent_bytes() > 15 << 30);
        // Transients are comparatively small at this batch.
        assert!(w.peak_transient_bytes() < 2 << 30);
    }

    #[test]
    fn lookups_scale_with_batch() {
        let small = dlrm(1024);
        let big = dlrm(8192);
        let count = |w: &Workload| -> u64 {
            w.steps
                .iter()
                .map(|s| match s {
                    crate::step::Step::Kernel(k) => {
                        k.gathers.iter().map(|g| g.lookups as u64).sum()
                    }
                    _ => 0,
                })
                .sum()
        };
        assert_eq!(count(&big), 8 * count(&small));
    }

    #[test]
    fn gathers_cover_all_26_tables() {
        let w = dlrm(128);
        let lookup_kernel = w
            .steps
            .iter()
            .find_map(|s| match s {
                crate::step::Step::Kernel(k) if &*k.name == "embed.lookup" => Some(k),
                _ => None,
            })
            .expect("lookup kernel");
        assert_eq!(lookup_kernel.gathers.len(), 26);
    }
}
