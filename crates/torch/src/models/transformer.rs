//! Transformer training workloads (GPT-2 and BERT families).
//!
//! One engine builds all four paper transformers from a
//! [`TransformerConfig`]. The per-layer kernel sequence mirrors the
//! PyTorch/Hugging Face implementations closely enough that the memory
//! behaviour is faithful: pre-norm attention + MLP blocks, activations
//! saved for backward and freed as the backward pass consumes them,
//! per-matrix Adam state updated at the end of the iteration, and a
//! data-dependent embedding gather at the input.

use crate::step::{TensorId, Workload, WorkloadBuilder};

const F32: u64 = 4;

/// Architecture of a transformer training workload.
#[derive(Debug, Clone)]
pub struct TransformerConfig {
    /// Model family label, e.g. `"gpt2-xl"`.
    pub model: &'static str,
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length (dataset-determined).
    pub seq: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Feed-forward inner dimension.
    pub ffn: usize,
}

/// GPT-2 XL: 48 layers, d=1600, 25 heads, seq 1024 (Wikitext).
pub fn gpt2_xl(batch: usize) -> Workload {
    build(
        &TransformerConfig {
            model: "gpt2-xl",
            layers: 48,
            hidden: 1600,
            heads: 25,
            seq: 1024,
            vocab: 50257,
            ffn: 6400,
        },
        batch,
    )
}

/// GPT-2 Large: 36 layers, d=1280, 20 heads, seq 1024 (Wikitext).
pub fn gpt2_l(batch: usize) -> Workload {
    build(
        &TransformerConfig {
            model: "gpt2-l",
            layers: 36,
            hidden: 1280,
            heads: 20,
            seq: 1024,
            vocab: 50257,
            ffn: 5120,
        },
        batch,
    )
}

/// BERT Large: 24 layers, d=1024, 16 heads, seq 512 (Wikitext MLM).
pub fn bert_large(batch: usize) -> Workload {
    build(
        &TransformerConfig {
            model: "bert-large",
            layers: 24,
            hidden: 1024,
            heads: 16,
            seq: 512,
            vocab: 30522,
            ffn: 4096,
        },
        batch,
    )
}

/// BERT Base: 12 layers, d=768, 12 heads, seq 512 (Wikitext MLM).
pub fn bert_base(batch: usize) -> Workload {
    build(
        &TransformerConfig {
            model: "bert-base",
            layers: 12,
            hidden: 768,
            heads: 12,
            seq: 512,
            vocab: 30522,
            ffn: 3072,
        },
        batch,
    )
}

/// BERT Large fine-tuning on GLUE CoLA: short sequences (128), the
/// Section 6.4 configuration.
pub fn bert_large_cola(batch: usize) -> Workload {
    build(
        &TransformerConfig {
            model: "bert-large-cola",
            layers: 24,
            hidden: 1024,
            heads: 16,
            seq: 128,
            vocab: 30522,
            ffn: 4096,
        },
        batch,
    )
}

/// A parameter matrix with its gradient and Adam moments.
struct ParamGroup {
    w: TensorId,
    g: TensorId,
    m: TensorId,
    v: TensorId,
    bytes: u64,
}

fn param(b: &mut WorkloadBuilder, bytes: u64) -> ParamGroup {
    ParamGroup {
        w: b.persistent(bytes),
        g: b.persistent(bytes),
        m: b.persistent(bytes),
        v: b.persistent(bytes),
        bytes,
    }
}

fn adam_step(b: &mut WorkloadBuilder, name: &str, p: &ParamGroup) {
    let n = p.bytes / F32;
    b.kernel(format!("{name}.adam"))
        .reads(&[p.g, p.m, p.v])
        .writes(&[p.w, p.m, p.v])
        .flops(10.0 * n as f64)
        .launch();
}

/// Builds the full training iteration for `cfg` at `batch`.
pub fn build(cfg: &TransformerConfig, batch: usize) -> Workload {
    assert!(batch > 0, "batch must be positive");
    let mut b = WorkloadBuilder::new(
        format!("{}/b{}", cfg.model, batch),
        cfg.model.to_string(),
        batch,
    );
    let h = cfg.hidden as u64;
    let f = cfg.ffn as u64;
    let s = cfg.seq as u64;
    let v = cfg.vocab as u64;
    let tokens = batch as u64 * s;
    let act = tokens * h * F32; // one hidden-state activation
    let heads = cfg.heads as u64;

    // Persistent parameters.
    let embed = param(&mut b, v * h * F32); // token embedding (tied head)
    let pos = param(&mut b, s * h * F32);
    struct LayerParams {
        qkv: ParamGroup,
        proj: ParamGroup,
        fc1: ParamGroup,
        fc2: ParamGroup,
        ln: ParamGroup,
    }
    let layers: Vec<LayerParams> = (0..cfg.layers)
        .map(|_| LayerParams {
            qkv: param(&mut b, h * 3 * h * F32),
            proj: param(&mut b, h * h * F32),
            fc1: param(&mut b, h * f * F32),
            fc2: param(&mut b, f * h * F32),
            ln: param(&mut b, 4 * h * F32), // two LayerNorms (scale+bias)
        })
        .collect();

    // ---- Forward ----
    // Embedding lookup: data-dependent rows of the embedding table plus
    // the (dense) positional table.
    let mut x = b.alloc(act);
    b.kernel("embed.fwd")
        .args(&[batch as u64, s])
        .reads(&[pos.w])
        .writes(&[x])
        .gather(embed.w, tokens as u32, (h * F32) as u32, 1.05)
        .flops((tokens * h) as f64)
        .launch();

    // Saved-for-backward tensors per layer. Mirrors what the eager
    // HF/PyTorch implementations keep alive: both the raw attention
    // scores and the softmax output, the dropout masks, and the MLP
    // intermediates.
    struct Saved {
        x_in: TensorId,
        ln1_out: TensorId,
        qkv: TensorId,
        scores: TensorId,
        probs: TensorId,
        attn_mask: TensorId,
        ctx: TensorId,
        ln2_out: TensorId,
        fc1_out: TensorId,
        gelu_out: TensorId,
        mlp_mask: TensorId,
        x_mid: TensorId,
    }
    let mut saved: Vec<Saved> = Vec::with_capacity(cfg.layers);

    for (i, lp) in layers.iter().enumerate() {
        let tag = format!("layer{i}");
        let x_in = x;
        let ln1_out = b.alloc(act);
        b.kernel(format!("{tag}.ln1.fwd"))
            .args(&[batch as u64])
            .reads(&[x_in, lp.ln.w])
            .writes(&[ln1_out])
            .flops((tokens * h * 8) as f64)
            .launch();

        let qkv = b.alloc(3 * act);
        b.kernel(format!("{tag}.qkv.fwd"))
            .reads(&[ln1_out, lp.qkv.w])
            .writes(&[qkv])
            .flops((2 * tokens * h * 3 * h) as f64)
            .launch();

        let scores = b.alloc(batch as u64 * heads * s * s * F32);
        b.kernel(format!("{tag}.attn_score.fwd"))
            .reads(&[qkv])
            .writes(&[scores])
            .flops((2 * tokens * s * h) as f64)
            .launch();

        let probs = b.alloc(batch as u64 * heads * s * s * F32);
        b.kernel(format!("{tag}.softmax.fwd"))
            .reads(&[scores])
            .writes(&[probs])
            .flops((batch as u64 * heads * s * s * 5) as f64)
            .launch();

        // Attention dropout mask (one byte per probability).
        let attn_mask = b.alloc(batch as u64 * heads * s * s);
        b.kernel(format!("{tag}.attn_dropout.fwd"))
            .reads(&[probs])
            .writes(&[probs, attn_mask])
            .flops((batch as u64 * heads * s * s * 2) as f64)
            .launch();

        let ctx = b.alloc(act);
        b.kernel(format!("{tag}.attn_ctx.fwd"))
            .reads(&[probs, qkv])
            .writes(&[ctx])
            .flops((2 * tokens * s * h) as f64)
            .launch();

        let x_mid = b.alloc(act);
        b.kernel(format!("{tag}.proj.fwd"))
            .reads(&[ctx, lp.proj.w, x_in])
            .writes(&[x_mid])
            .flops((2 * tokens * h * h) as f64)
            .launch();

        let ln2_out = b.alloc(act);
        b.kernel(format!("{tag}.ln2.fwd"))
            .reads(&[x_mid, lp.ln.w])
            .writes(&[ln2_out])
            .flops((tokens * h * 8) as f64)
            .launch();

        let fc1_out = b.alloc(tokens * f * F32);
        b.kernel(format!("{tag}.fc1.fwd"))
            .reads(&[ln2_out, lp.fc1.w])
            .writes(&[fc1_out])
            .flops((2 * tokens * h * f) as f64)
            .launch();

        let gelu_out = b.alloc(tokens * f * F32);
        b.kernel(format!("{tag}.gelu.fwd"))
            .reads(&[fc1_out])
            .writes(&[gelu_out])
            .flops((tokens * f * 8) as f64)
            .launch();

        // Hidden dropout mask over the MLP activation.
        let mlp_mask = b.alloc(tokens * f);
        b.kernel(format!("{tag}.mlp_dropout.fwd"))
            .reads(&[gelu_out])
            .writes(&[gelu_out, mlp_mask])
            .flops((tokens * f * 2) as f64)
            .launch();

        let x_out = b.alloc(act);
        b.kernel(format!("{tag}.fc2.fwd"))
            .reads(&[gelu_out, lp.fc2.w, x_mid])
            .writes(&[x_out])
            .flops((2 * tokens * f * h) as f64)
            .launch();

        saved.push(Saved {
            x_in,
            ln1_out,
            qkv,
            scores,
            probs,
            attn_mask,
            ctx,
            ln2_out,
            fc1_out,
            gelu_out,
            mlp_mask,
            x_mid,
        });
        x = x_out;
    }

    // LM / MLM head: logits over the vocabulary (tied embedding).
    let logits = b.alloc(tokens * v * F32);
    b.kernel("head.fwd")
        .reads(&[x, embed.w])
        .writes(&[logits])
        .flops((2 * tokens * h * v) as f64)
        .launch();

    // Cross-entropy materializes the log-probabilities (a second
    // vocabulary-sized tensor, as in eager PyTorch).
    let log_probs = b.alloc(tokens * v * F32);
    b.kernel("loss.fwd")
        .reads(&[logits])
        .writes(&[log_probs])
        .flops((tokens * v * 6) as f64)
        .launch();

    // Loss + head backward produce the gradient flowing into the stack.
    let mut grad_x = b.alloc(act);
    b.kernel("head.bwd")
        .reads(&[logits, log_probs, x, embed.w])
        .writes(&[grad_x, embed.g])
        .flops((4 * tokens * h * v) as f64)
        .launch();
    b.free(log_probs);
    b.free(logits);
    b.free(x);

    // ---- Backward (reverse layer order) ----
    for (i, lp) in layers.iter().enumerate().rev() {
        let tag = format!("layer{i}");
        let sv = &saved[i];

        let grad_mid = b.alloc(act);
        b.kernel(format!("{tag}.fc2.bwd"))
            .reads(&[grad_x, sv.gelu_out, sv.mlp_mask, lp.fc2.w])
            .writes(&[grad_mid, lp.fc2.g])
            .flops((4 * tokens * f * h) as f64)
            .launch();

        b.kernel(format!("{tag}.gelu_fc1.bwd"))
            .reads(&[grad_mid, sv.fc1_out, sv.ln2_out, lp.fc1.w])
            .writes(&[grad_mid, lp.fc1.g])
            .flops((4 * tokens * h * f) as f64)
            .launch();

        b.kernel(format!("{tag}.ln2.bwd"))
            .reads(&[grad_mid, sv.x_mid, lp.ln.w])
            .writes(&[grad_mid, lp.ln.g])
            .flops((tokens * h * 10) as f64)
            .launch();

        let grad_attn = b.alloc(act);
        b.kernel(format!("{tag}.proj.bwd"))
            .reads(&[grad_mid, sv.ctx, lp.proj.w])
            .writes(&[grad_attn, lp.proj.g])
            .flops((4 * tokens * h * h) as f64)
            .launch();

        let grad_qkv = b.alloc(3 * act);
        b.kernel(format!("{tag}.attn.bwd"))
            .reads(&[grad_attn, sv.probs, sv.scores, sv.attn_mask, sv.qkv])
            .writes(&[grad_qkv])
            .flops((4 * tokens * s * h) as f64)
            .launch();
        b.free(grad_attn);

        b.kernel(format!("{tag}.qkv.bwd"))
            .reads(&[grad_qkv, sv.ln1_out, lp.qkv.w])
            .writes(&[grad_mid, lp.qkv.g])
            .flops((4 * tokens * h * 3 * h) as f64)
            .launch();
        b.free(grad_qkv);

        b.kernel(format!("{tag}.ln1.bwd"))
            .reads(&[grad_mid, sv.x_in, lp.ln.w])
            .writes(&[grad_mid, lp.ln.g])
            .flops((tokens * h * 10) as f64)
            .launch();

        // Free the layer's saved activations and the upstream gradient.
        b.free(grad_x);
        grad_x = grad_mid;
        b.free(sv.ln1_out);
        b.free(sv.qkv);
        b.free(sv.scores);
        b.free(sv.probs);
        b.free(sv.attn_mask);
        b.free(sv.ctx);
        b.free(sv.ln2_out);
        b.free(sv.fc1_out);
        b.free(sv.gelu_out);
        b.free(sv.mlp_mask);
        b.free(sv.x_mid);
        if i > 0 {
            b.free(sv.x_in);
        }
    }
    // saved[0].x_in is the embedding output, freed here.
    let embed_out = saved[0].x_in;
    b.kernel("embed.bwd")
        .reads(&[grad_x])
        .writes(&[pos.g])
        .gather(embed.g, tokens as u32, (h * F32) as u32, 1.05)
        .flops((tokens * h) as f64)
        .launch();
    b.free(grad_x);
    b.free(embed_out);

    // ---- Optimizer ----
    adam_step(&mut b, "embed", &embed);
    adam_step(&mut b, "pos", &pos);
    for (i, lp) in layers.iter().enumerate() {
        adam_step(&mut b, &format!("layer{i}.qkv"), &lp.qkv);
        adam_step(&mut b, &format!("layer{i}.proj"), &lp.proj);
        adam_step(&mut b, &format!("layer{i}.fc1"), &lp.fc1);
        adam_step(&mut b, &format!("layer{i}.fc2"), &lp.fc2);
        adam_step(&mut b, &format!("layer{i}.ln"), &lp.ln);
    }

    let w = b.build();
    debug_assert!(w.validate().is_ok(), "{:?}", w.validate());
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt2_xl_is_valid_and_big() {
        let w = gpt2_xl(3);
        w.validate().unwrap();
        // ~1.5B params × 16 bytes (w,g,m,v) ≈ 25 GB persistent.
        assert!(w.persistent_bytes() > 20 << 30);
        // Hundreds of kernels per iteration.
        assert!(w.kernel_count() > 500, "kernels: {}", w.kernel_count());
    }

    #[test]
    fn bert_base_fits_commodity_memory() {
        let w = bert_base(8);
        w.validate().unwrap();
        // BERT Base is ~110M params → < 3 GB persistent.
        assert!(w.persistent_bytes() < 3 << 30);
    }

    #[test]
    fn cola_sequence_shrinks_activations() {
        let wiki = bert_large(8);
        let cola = bert_large_cola(8);
        assert!(wiki.peak_transient_bytes() > 4 * cola.peak_transient_bytes());
        // Only the positional-embedding parameters depend on seq length.
        let diff = wiki.persistent_bytes() - cola.persistent_bytes();
        assert!(diff < wiki.persistent_bytes() / 100, "diff {diff}");
    }

    #[test]
    fn kernel_names_repeat_across_layers_but_not_within() {
        let w = bert_base(2);
        let mut names = std::collections::HashSet::new();
        let mut dup_within = 0;
        for s in &w.steps {
            if let crate::step::Step::Kernel(k) = s {
                if !names.insert(k.name.clone()) {
                    dup_within += 1;
                }
            }
        }
        // Only the shared-LN backward kernels repeat a name within one
        // iteration (two ln gradient kernels per layer share params).
        assert!(dup_within <= w.kernel_count() / 4);
    }

    #[test]
    fn flops_scale_with_batch() {
        let a = bert_base(2);
        let b = bert_base(8);
        assert!(b.total_flops() > 3.5 * a.total_flops());
    }
}
