//! Convolutional training workloads: ResNet-152/200, DCGAN, MobileNet.
//!
//! The builder models each network as a chain of convolution kernels
//! (batch-norm and activation folded into the conv kernel, as cuDNN
//! fusion does), saving each conv's input for the backward pass and
//! releasing it as backward consumes it — the allocate/free churn that
//! exercises the caching allocator and DeepUM's invalidation.

use crate::step::{TensorId, Workload, WorkloadBuilder};

const F32: u64 = 4;

/// A convolution's parameters with gradient and SGD momentum.
struct ConvParam {
    w: TensorId,
    g: TensorId,
    m: TensorId,
    bytes: u64,
}

/// One recorded conv in the forward chain.
struct Rec {
    tag: String,
    param: ConvParam,
    input: TensorId,
    input_bytes: u64,
    out_bytes: u64,
    flops: f64,
    /// Keep `input` alive after backward (e.g. the image batch, or a
    /// tensor shared with a skip connection freed elsewhere).
    input_shared: bool,
}

/// Sequential conv-chain builder. State only — every method takes the
/// [`WorkloadBuilder`] explicitly so multiple chains can interleave
/// (DCGAN builds the generator and discriminator together).
struct Chain {
    batch: u64,
    recs: Vec<Rec>,
    /// Current activation, spatial size, channels.
    x: TensorId,
    h: u64,
    c: u64,
    x_bytes: u64,
}

impl Chain {
    /// Starts a chain from an input image batch of `h`×`h`×`c`.
    fn start(b: &mut WorkloadBuilder, batch: u64, h: u64, c: u64) -> Self {
        let bytes = batch * h * h * c * F32;
        let x = b.alloc(bytes);
        b.kernel("input.load")
            .args(&[batch, h, c])
            .writes(&[x])
            .flops((batch * h * h * c) as f64)
            .launch();
        Chain {
            batch,
            recs: Vec::new(),
            x,
            h,
            c,
            x_bytes: bytes,
        }
    }

    /// Starts a chain from an existing activation (DCGAN generator).
    fn from_tensor(batch: u64, x: TensorId, h: u64, c: u64) -> Self {
        let x_bytes = batch * h * h * c * F32;
        Chain {
            batch,
            recs: Vec::new(),
            x,
            h,
            c,
            x_bytes,
        }
    }

    fn param(&mut self, b: &mut WorkloadBuilder, bytes: u64) -> ConvParam {
        ConvParam {
            w: b.persistent(bytes),
            g: b.persistent(bytes),
            m: b.persistent(bytes),
            bytes,
        }
    }

    /// Emits a conv (+BN+activation) layer: `k`×`k`, stride `s`,
    /// `cout` output channels. `upsample` doubles instead of dividing
    /// the spatial size (transposed conv).
    fn conv(
        &mut self,
        b: &mut WorkloadBuilder,
        tag: &str,
        cout: u64,
        k: u64,
        s: u64,
        upsample: bool,
    ) {
        let h_out = if upsample {
            self.h * s
        } else {
            self.h.div_ceil(s)
        };
        let w_bytes = k * k * self.c * cout * F32;
        let param = self.param(b, w_bytes);
        let out_bytes = self.batch * h_out * h_out * cout * F32;
        let out = b.alloc(out_bytes);
        let flops = (2 * k * k * self.c * cout * h_out * h_out * self.batch) as f64;
        b.kernel(format!("{tag}.fwd"))
            .args(&[self.batch, self.c, cout, k, s])
            .reads(&[self.x, param.w])
            .writes(&[out])
            .flops(flops)
            .launch();
        self.recs.push(Rec {
            tag: tag.to_string(),
            param,
            input: self.x,
            input_bytes: self.x_bytes,
            out_bytes,
            flops,
            input_shared: self.recs.is_empty(),
        });
        self.x = out;
        self.x_bytes = out_bytes;
        self.h = h_out;
        self.c = cout;
    }

    /// Emits a residual bottleneck (1×1 → 3×3 → 1×1 with skip).
    fn bottleneck(
        &mut self,
        b: &mut WorkloadBuilder,
        tag: &str,
        width: u64,
        cout: u64,
        stride: u64,
    ) {
        let block_in = self.x;
        let block_in_bytes = self.x_bytes;
        let cin = self.c;
        self.conv(b, &format!("{tag}.c1"), width, 1, 1, false);
        self.conv(b, &format!("{tag}.c2"), width, 3, stride, false);
        self.conv(b, &format!("{tag}.c3"), cout, 1, 1, false);
        if cin != cout || stride != 1 {
            // Projection shortcut read during the add.
            let w_bytes = cin * cout * F32;
            let param = self.param(b, w_bytes);
            let out = b.alloc(self.x_bytes);
            b.kernel(format!("{tag}.skip.fwd"))
                .reads(&[block_in, param.w, self.x])
                .writes(&[out])
                .flops((2 * cin * cout * self.h * self.h * self.batch) as f64)
                .launch();
            self.recs.push(Rec {
                tag: format!("{tag}.skip"),
                param,
                input: block_in,
                input_bytes: block_in_bytes,
                out_bytes: self.x_bytes,
                flops: (2 * cin * cout * self.h * self.h * self.batch) as f64,
                // `block_in` is also some earlier conv's saved input.
                input_shared: true,
            });
            let old = self.x;
            b.free(old);
            self.x = out;
        } else {
            // Identity skip: elementwise add into the chain output.
            b.kernel(format!("{tag}.add.fwd"))
                .reads(&[block_in, self.x])
                .writes(&[self.x])
                .flops((self.x_bytes / F32 * 2) as f64)
                .launch();
        }
    }

    /// Emits a depthwise-separable block (MobileNet).
    fn dw_separable(&mut self, b: &mut WorkloadBuilder, tag: &str, cout: u64, stride: u64) {
        let c = self.c;
        // Depthwise 3×3: weights k*k*c.
        let h_out = self.h.div_ceil(stride);
        let dw_param = self.param(b, 9 * c * F32);
        let dw_bytes = self.batch * h_out * h_out * c * F32;
        let dw_out = b.alloc(dw_bytes);
        b.kernel(format!("{tag}.dw.fwd"))
            .args(&[self.batch, c, stride])
            .reads(&[self.x, dw_param.w])
            .writes(&[dw_out])
            .flops((2 * 9 * c * h_out * h_out * self.batch) as f64)
            .launch();
        self.recs.push(Rec {
            tag: format!("{tag}.dw"),
            param: dw_param,
            input: self.x,
            input_bytes: self.x_bytes,
            out_bytes: dw_bytes,
            flops: (2 * 9 * c * h_out * h_out * self.batch) as f64,
            input_shared: self.recs.is_empty(),
        });
        self.x = dw_out;
        self.x_bytes = dw_bytes;
        self.h = h_out;
        // Pointwise 1×1 to cout.
        self.conv(b, &format!("{tag}.pw"), cout, 1, 1, false);
    }

    /// Classifier head: global pool + linear to `classes`, loss.
    fn head(&mut self, b: &mut WorkloadBuilder, classes: u64) -> TensorId {
        let pooled = b.alloc(self.batch * self.c * F32);
        b.kernel("head.pool.fwd")
            .reads(&[self.x])
            .writes(&[pooled])
            .flops((self.x_bytes / F32) as f64)
            .launch();
        let fc = self.param(b, self.c * classes * F32);
        let logits = b.alloc(self.batch * classes * F32);
        b.kernel("head.fc.fwd")
            .reads(&[pooled, fc.w])
            .writes(&[logits])
            .flops((2 * self.batch * self.c * classes) as f64)
            .launch();
        // Loss backward seeds the gradient chain.
        let grad = b.alloc(self.x_bytes);
        b.kernel("head.bwd")
            .reads(&[logits, pooled, fc.w, self.x])
            .writes(&[grad, fc.g])
            .flops((4 * self.batch * self.c * classes) as f64)
            .launch();
        b.free(logits);
        b.free(pooled);
        self.recs.push(Rec {
            tag: "head.fc".into(),
            param: fc,
            input: self.x,
            input_bytes: self.x_bytes,
            out_bytes: self.batch * classes * F32,
            flops: (2 * self.batch * self.c * classes) as f64,
            input_shared: false,
        });
        // head.fc's "input" (self.x) is freed by the backward sweep.
        grad
    }

    /// Emits the backward sweep and SGD updates; consumes the chain.
    fn backward(self, b: &mut WorkloadBuilder, mut grad: TensorId) {
        // The last rec's input is freed by the sweep; pop head rec input
        // handling is uniform.
        for rec in self.recs.iter().rev() {
            let grad_in = b.alloc(rec.input_bytes);
            b.kernel(format!("{}.bwd", rec.tag))
                .reads(&[grad, rec.input, rec.param.w])
                .writes(&[grad_in, rec.param.g])
                .flops(2.0 * rec.flops)
                .launch();
            b.free(grad);
            if !rec.input_shared {
                b.free(rec.input);
            }
            grad = grad_in;
            let _ = rec.out_bytes;
        }
        b.free(grad);
        // Free the original network input (first rec's shared input).
        if let Some(first) = self.recs.first() {
            if first.input_shared {
                b.free(first.input);
            }
        }
        // SGD with momentum per parameter tensor.
        for rec in &self.recs {
            let n = rec.param.bytes / F32;
            b.kernel(format!("{}.sgd", rec.tag))
                .reads(&[rec.param.g, rec.param.m])
                .writes(&[rec.param.w, rec.param.m])
                .flops(4.0 * n as f64)
                .launch();
        }
    }
}

fn resnet(model: &'static str, blocks: [usize; 4], batch: usize, image: u64) -> Workload {
    let mut b = WorkloadBuilder::new(format!("{model}/b{batch}"), model, batch);
    let bt = batch as u64;
    let mut chain = if image >= 64 {
        let mut c = Chain::start(&mut b, bt, image, 3);
        c.conv(&mut b, "stem", 64, 7, 2, false);
        // Max-pool halves the spatial size; modelled as a cheap kernel.
        c.h /= 2;
        c.x_bytes /= 4;
        c
    } else {
        let mut c = Chain::start(&mut b, bt, image, 3);
        c.conv(&mut b, "stem", 64, 3, 1, false);
        c
    };

    let widths = [64u64, 128, 256, 512];
    for (stage, (&n, &w)) in blocks.iter().zip(widths.iter()).enumerate() {
        let cout = w * 4;
        for blk in 0..n {
            let stride = if blk == 0 && stage > 0 { 2 } else { 1 };
            chain.bottleneck(&mut b, &format!("s{stage}.b{blk}"), w, cout, stride);
        }
    }
    let grad = chain.head(&mut b, 1000);
    chain.backward(&mut b, grad);
    let w = b.build();
    debug_assert!(w.validate().is_ok(), "{:?}", w.validate());
    w
}

/// ResNet-152 on ImageNet (paper Table 2).
pub fn resnet152(batch: usize) -> Workload {
    resnet("resnet152", [3, 8, 36, 3], batch, 224)
}

/// ResNet-200 on ImageNet (paper Table 2).
pub fn resnet200(batch: usize) -> Workload {
    resnet("resnet200", [3, 24, 36, 3], batch, 224)
}

/// ResNet-200 on CIFAR-10 (Section 6.4 comparison).
pub fn resnet200_cifar(batch: usize) -> Workload {
    resnet("resnet200-cifar", [3, 24, 36, 3], batch, 32)
}

/// MobileNet(V1) on CIFAR-100 (paper Table 2).
pub fn mobilenet(batch: usize) -> Workload {
    let mut b = WorkloadBuilder::new(format!("mobilenet/b{batch}"), "mobilenet", batch);
    let bt = batch as u64;
    let mut chain = Chain::start(&mut b, bt, 32, 3);
    chain.conv(&mut b, "stem", 32, 3, 1, false);
    let plan: [(u64, u64); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (cout, stride)) in plan.into_iter().enumerate() {
        chain.dw_separable(&mut b, &format!("dw{i}"), cout, stride);
    }
    let grad = chain.head(&mut b, 100);
    chain.backward(&mut b, grad);
    let w = b.build();
    debug_assert!(w.validate().is_ok(), "{:?}", w.validate());
    w
}

/// DCGAN on celebA 64×64 (paper Table 2): one iteration trains the
/// discriminator on a real and a generated batch, then the generator.
pub fn dcgan(batch: usize) -> Workload {
    let mut b = WorkloadBuilder::new(format!("dcgan/b{batch}"), "dcgan", batch);
    let bt = batch as u64;

    // Generator: z(100) -> 4x4x1024 -> ... -> 64x64x3.
    let z = b.alloc(bt * 100 * F32);
    b.kernel("g.sample_z")
        .writes(&[z])
        .flops((bt * 100) as f64)
        .launch();
    let seed_bytes = bt * 4 * 4 * 1024 * F32;
    let seed = b.alloc(seed_bytes);
    let g_fc = (
        b.persistent(100 * 4 * 4 * 1024 * F32),
        b.persistent(100 * 4 * 4 * 1024 * F32),
        b.persistent(100 * 4 * 4 * 1024 * F32),
    );
    b.kernel("g.project.fwd")
        .reads(&[z, g_fc.0])
        .writes(&[seed])
        .flops((2 * bt * 100 * 4 * 4 * 1024) as f64)
        .launch();
    let mut gen = Chain::from_tensor(bt, seed, 4, 1024);
    gen.conv(&mut b, "g.up1", 512, 4, 2, true); // 8x8
    gen.conv(&mut b, "g.up2", 256, 4, 2, true); // 16x16
    gen.conv(&mut b, "g.up3", 128, 4, 2, true); // 32x32
    gen.conv(&mut b, "g.up4", 3, 4, 2, true); // 64x64
    let fake = gen.x;

    // Discriminator on the fake batch.
    let mut d_fake = Chain::from_tensor(bt, fake, 64, 3);
    d_fake.conv(&mut b, "d.c1", 128, 4, 2, false); // 32
    d_fake.conv(&mut b, "d.c2", 256, 4, 2, false); // 16
    d_fake.conv(&mut b, "d.c3", 512, 4, 2, false); // 8
    d_fake.conv(&mut b, "d.c4", 1024, 4, 2, false); // 4
    let grad_fake = d_fake.head(&mut b, 1);
    // Backward through D (training D on fakes) and into G.
    d_fake.backward(&mut b, grad_fake);

    // Discriminator on a real batch (separate activations, same params
    // would double-declare tensors; a second parameter set keeps the
    // memory footprint equivalent while the step program stays simple).
    let mut d_real = Chain::start(&mut b, bt, 64, 3);
    d_real.conv(&mut b, "d2.c1", 128, 4, 2, false);
    d_real.conv(&mut b, "d2.c2", 256, 4, 2, false);
    d_real.conv(&mut b, "d2.c3", 512, 4, 2, false);
    d_real.conv(&mut b, "d2.c4", 1024, 4, 2, false);
    let grad_real = d_real.head(&mut b, 1);
    d_real.backward(&mut b, grad_real);

    // Generator backward + update.
    let g_grad = b.alloc(seed_bytes);
    b.kernel("g.bwd")
        .reads(&[seed, g_fc.0])
        .writes(&[g_grad, g_fc.1])
        .flops((4 * bt * 100 * 4 * 4 * 1024) as f64)
        .launch();
    gen.backward(&mut b, g_grad);
    b.kernel("g.project.sgd")
        .reads(&[g_fc.1, g_fc.2])
        .writes(&[g_fc.0, g_fc.2])
        .flops((100 * 4 * 4 * 1024) as f64)
        .launch();
    b.free(z);

    let w = b.build();
    debug_assert!(w.validate().is_ok(), "{:?}", w.validate());
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnets_validate() {
        for w in [resnet152(4), resnet200(4), resnet200_cifar(64)] {
            w.validate().unwrap();
            assert!(w.kernel_count() > 200);
        }
    }

    #[test]
    fn imagenet_activations_dwarf_cifar() {
        let inet = resnet200(8);
        let cifar = resnet200_cifar(8);
        // CIFAR stages run at 32/16/8/4 vs ImageNet's 56/28/14/7 plus the
        // 112×112 stem, so ImageNet activations are a few times larger.
        assert!(inet.peak_transient_bytes() > 2 * cifar.peak_transient_bytes());
    }

    #[test]
    fn resnet_params_plausible() {
        // ResNet-152 has ~60M params; w+g+m = ~720 MB.
        let w = resnet152(1);
        let mb = w.persistent_bytes() / (1 << 20);
        assert!((500..1200).contains(&mb), "persistent: {mb} MiB");
    }

    #[test]
    fn mobilenet_is_small() {
        let w = mobilenet(64);
        w.validate().unwrap();
        // MobileNet ~4M params.
        assert!(w.persistent_bytes() < 200 << 20);
    }

    #[test]
    fn dcgan_validates_and_scales() {
        let small = dcgan(64);
        small.validate().unwrap();
        let big = dcgan(512);
        assert!(big.peak_transient_bytes() > 4 * small.peak_transient_bytes());
    }
}
