//! Workload generators for the paper's nine DNN configurations
//! (Table 2).
//!
//! Each generator compiles a model description into a [`Workload`]: the
//! persistent tensors (weights, gradients, Adam state, embedding tables)
//! and one training iteration's step program (forward, backward,
//! optimizer). Shapes follow the published architectures; datasets enter
//! only through input shapes (sequence length, image size) and, for
//! DLRM, the skewed embedding-lookup distribution.

pub mod convnet;
pub mod dlrm;
pub mod transformer;

use crate::step::Workload;
use serde::{Deserialize, Serialize};

/// The nine model/dataset configurations of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// GPT-2 XL (48 layers, d=1600) on Wikitext, seq 1024.
    Gpt2Xl,
    /// GPT-2 Large (36 layers, d=1280) on Wikitext, seq 1024.
    Gpt2L,
    /// BERT Large (24 layers, d=1024) on Wikitext, seq 512.
    BertLarge,
    /// BERT Base (12 layers, d=768) on Wikitext, seq 512.
    BertBase,
    /// BERT Large on GLUE CoLA, seq 128 (the Section 6.4 configuration).
    BertLargeCola,
    /// DLRM on Criteo Kaggle.
    Dlrm,
    /// ResNet-152 on ImageNet (224×224).
    ResNet152,
    /// ResNet-200 on ImageNet (224×224).
    ResNet200,
    /// ResNet-200 on CIFAR-10 (32×32, the Section 6.4 configuration).
    ResNet200Cifar,
    /// DCGAN on celebA (64×64).
    Dcgan,
    /// MobileNet on CIFAR-100 (32×32).
    MobileNet,
}

impl ModelKind {
    /// All kinds, for sweep-style experiments.
    pub const ALL: [ModelKind; 11] = [
        ModelKind::Gpt2Xl,
        ModelKind::Gpt2L,
        ModelKind::BertLarge,
        ModelKind::BertBase,
        ModelKind::BertLargeCola,
        ModelKind::Dlrm,
        ModelKind::ResNet152,
        ModelKind::ResNet200,
        ModelKind::ResNet200Cifar,
        ModelKind::Dcgan,
        ModelKind::MobileNet,
    ];

    /// Short identifier used in reports (matches the paper's labels).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Gpt2Xl => "gpt2-xl",
            ModelKind::Gpt2L => "gpt2-l",
            ModelKind::BertLarge => "bert-large",
            ModelKind::BertBase => "bert-base",
            ModelKind::BertLargeCola => "bert-large-cola",
            ModelKind::Dlrm => "dlrm",
            ModelKind::ResNet152 => "resnet152",
            ModelKind::ResNet200 => "resnet200",
            ModelKind::ResNet200Cifar => "resnet200-cifar",
            ModelKind::Dcgan => "dcgan",
            ModelKind::MobileNet => "mobilenet",
        }
    }

    /// Builds the training workload at `batch`.
    pub fn build(self, batch: usize) -> Workload {
        match self {
            ModelKind::Gpt2Xl => transformer::gpt2_xl(batch),
            ModelKind::Gpt2L => transformer::gpt2_l(batch),
            ModelKind::BertLarge => transformer::bert_large(batch),
            ModelKind::BertBase => transformer::bert_base(batch),
            ModelKind::BertLargeCola => transformer::bert_large_cola(batch),
            ModelKind::Dlrm => dlrm::dlrm(batch),
            ModelKind::ResNet152 => convnet::resnet152(batch),
            ModelKind::ResNet200 => convnet::resnet200(batch),
            ModelKind::ResNet200Cifar => convnet::resnet200_cifar(batch),
            ModelKind::Dcgan => convnet::dcgan(batch),
            ModelKind::MobileNet => convnet::mobilenet(batch),
        }
    }
}

impl core::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_builds_a_valid_workload() {
        for kind in ModelKind::ALL {
            let batch = match kind {
                ModelKind::Dlrm => 4096,
                ModelKind::Gpt2Xl | ModelKind::Gpt2L => 3,
                _ => 4,
            };
            let w = kind.build(batch);
            w.validate()
                .unwrap_or_else(|e| panic!("{kind}: invalid workload: {e}"));
            assert!(w.kernel_count() > 10, "{kind}: too few kernels");
            assert!(w.peak_bytes() > 0);
            assert_eq!(w.batch, batch);
        }
    }

    #[test]
    fn transformer_sizes_are_ordered() {
        let xl = ModelKind::Gpt2Xl.build(3);
        let l = ModelKind::Gpt2L.build(3);
        let bl = ModelKind::BertLarge.build(3);
        let bb = ModelKind::BertBase.build(3);
        assert!(xl.persistent_bytes() > l.persistent_bytes());
        assert!(l.persistent_bytes() > bl.persistent_bytes());
        assert!(bl.persistent_bytes() > bb.persistent_bytes());
    }

    #[test]
    fn gpt2_xl_parameter_count_is_plausible() {
        // GPT-2 XL has ~1.5B parameters; persistent state is
        // w + g + m + v = 4 copies in FP32 = ~25 GB.
        let w = ModelKind::Gpt2Xl.build(1);
        let gb = w.persistent_bytes() as f64 / (1u64 << 30) as f64;
        assert!((20.0..32.0).contains(&gb), "persistent: {gb} GiB");
    }

    #[test]
    fn peak_scales_with_batch() {
        for kind in [ModelKind::BertLarge, ModelKind::ResNet152, ModelKind::Dcgan] {
            let small = kind.build(2);
            let big = kind.build(8);
            assert!(
                big.peak_transient_bytes() > 2 * small.peak_transient_bytes(),
                "{kind}: transient did not scale"
            );
        }
    }

    #[test]
    fn resnet200_deeper_than_152() {
        let r200 = ModelKind::ResNet200.build(4);
        let r152 = ModelKind::ResNet152.build(4);
        assert!(r200.kernel_count() > r152.kernel_count());
        assert!(r200.persistent_bytes() > r152.persistent_bytes());
    }

    #[test]
    fn dlrm_has_gathers() {
        let w = ModelKind::Dlrm.build(4096);
        let gathers: usize = w
            .steps
            .iter()
            .map(|s| match s {
                crate::step::Step::Kernel(k) => k.gathers.len(),
                _ => 0,
            })
            .sum();
        assert!(gathers > 0, "DLRM must have data-dependent lookups");
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = ModelKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), ModelKind::ALL.len());
    }
}
