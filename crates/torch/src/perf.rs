//! V100 kernel-time model.
//!
//! Converts a kernel's work (FLOPs and touched bytes) into virtual
//! compute time under a roofline model: a kernel runs at the slower of
//! its compute bound and its memory-bandwidth bound, derated by an
//! achievable-efficiency factor. Constants approximate a Tesla V100
//! PCIe training in FP32 (the paper's PyTorch 1.8 default).

use deepum_sim::time::Ns;
use serde::{Deserialize, Serialize};

/// Throughput model of the simulated device.
///
/// # Example
///
/// ```
/// use deepum_torch::perf::PerfModel;
///
/// let perf = PerfModel::v100();
/// // A 1-GFLOP kernel over 100 MiB: memory-bound on V100.
/// let t = perf.kernel_time(1e9, 100 << 20);
/// assert!(t.as_micros() > 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfModel {
    /// Peak floating-point throughput, FLOP/s.
    pub peak_flops: f64,
    /// Peak device-memory bandwidth, bytes/s.
    pub peak_membw: f64,
    /// Fraction of peak compute real kernels achieve.
    pub compute_efficiency: f64,
    /// Fraction of peak bandwidth real kernels achieve.
    pub membw_efficiency: f64,
    /// Fixed per-kernel launch/dispatch latency.
    pub launch_overhead: Ns,
}

impl PerfModel {
    /// Tesla V100 (FP32 training mix): 15.7 TFLOP/s peak, 900 GB/s HBM2.
    pub fn v100() -> Self {
        PerfModel {
            peak_flops: 15.7e12,
            peak_membw: 900.0e9,
            compute_efficiency: 0.45,
            membw_efficiency: 0.65,
            launch_overhead: Ns::from_micros(5),
        }
    }

    /// Time for a kernel doing `flops` of work over `bytes` of data.
    pub fn kernel_time(&self, flops: f64, bytes: u64) -> Ns {
        let compute = flops / (self.peak_flops * self.compute_efficiency);
        let memory = bytes as f64 / (self.peak_membw * self.membw_efficiency);
        self.launch_overhead + Ns::from_secs_f64(compute.max(memory))
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_scales_with_flops() {
        let p = PerfModel::v100();
        let small = p.kernel_time(1e9, 1 << 10);
        let big = p.kernel_time(1e12, 1 << 10);
        assert!(big > small * 100);
    }

    #[test]
    fn memory_bound_scales_with_bytes() {
        let p = PerfModel::v100();
        let small = p.kernel_time(0.0, 1 << 20);
        let big = p.kernel_time(0.0, 1 << 30);
        assert!(big > small * 100);
    }

    #[test]
    fn launch_overhead_is_floor() {
        let p = PerfModel::v100();
        assert!(p.kernel_time(0.0, 0) >= p.launch_overhead);
    }

    #[test]
    fn roofline_takes_the_max() {
        let p = PerfModel::v100();
        let t_mem = p.kernel_time(0.0, 1 << 30);
        let t_both = p.kernel_time(1e6, 1 << 30);
        assert_eq!(t_mem, t_both); // tiny flops hidden under memory time
    }
}
