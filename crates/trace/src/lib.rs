//! Deterministic structured-event tracing for the DeepUM reproduction.
//!
//! The paper's only quantitative window into UM behaviour is the page
//! fault counter (Table 5); this crate records *why*: fault-buffer
//! drains, page migrations with their path, eviction victim choices
//! with their reason, chain follows with depth, watchdog transitions,
//! injected faults — each stamped with the virtual-time nanosecond at
//! which it happened.
//!
//! Design constraints:
//!
//! * **Zero wallclock.** Timestamps come from the simulation clock;
//!   the crate never reads host time (enforced by `deepum-tidy`).
//! * **Byte-stable.** Event payloads are integers, booleans, and small
//!   enums; renderings never contain floats or hash-ordered maps, so a
//!   trace of a given run is always the same bytes.
//! * **Near-zero cost when off.** Layers hold an
//!   `Option<SharedTracer>`; untraced runs pay one `None` branch per
//!   emit site and produce reports byte-identical to pre-tracing
//!   builds.
//!
//! # Example
//!
//! ```
//! use deepum_trace::{shared, TraceEvent, Tracer};
//!
//! let tracer = shared(Tracer::export());
//! tracer.borrow_mut().emit(0, TraceEvent::KernelBegin { seq: 0, name: "gemm".into() });
//! tracer.borrow_mut().emit(42, TraceEvent::KernelEnd { seq: 0, faults: 0, stall_ns: 0 });
//! let jsonl = tracer.borrow_mut().jsonl();
//! assert_eq!(jsonl.lines().count(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod report;
pub mod sink;
pub mod timeline;

pub use event::{
    AdviceKind, EvictReason, InjectKind, PressureLevel, ServeLevel, ShedReason, TraceEvent,
    TraceRecord, WatchdogMode,
};
pub use report::TraceReport;
pub use sink::{shared, ExportSink, NullSink, RingSink, SharedTracer, TraceSink, Tracer};
pub use timeline::{KernelTraceSummary, Timeline, CHAIN_DEPTH_BUCKETS};
