//! Trace sinks and the shared tracer handle.
//!
//! A [`TraceSink`] decides what happens to each emitted record. The
//! tracer always feeds the [`Timeline`](crate::timeline::Timeline)
//! aggregator regardless of sink, so per-kernel summaries exist even
//! when the raw stream is discarded.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::event::{TraceEvent, TraceRecord};
use crate::report::TraceReport;
use crate::timeline::Timeline;

/// Destination for trace records.
pub trait TraceSink {
    /// Accepts one record. Must not panic and must not touch wall
    /// clocks or ambient randomness: sinks run on the simulation's
    /// deterministic hot path.
    fn record(&mut self, record: TraceRecord);

    /// Records dropped so far (ring overflow). Non-zero is the explicit
    /// "this stream is truncated" marker.
    fn dropped(&self) -> u64 {
        0
    }

    /// Retained records in emission order. Sinks that keep nothing
    /// return an empty slice.
    fn records(&self) -> &[TraceRecord] {
        &[]
    }
}

/// Discards every record. The default when tracing is requested only
/// for the timeline roll-up; one virtual call per event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _record: TraceRecord) {}
}

/// Keeps the last `capacity` records for post-mortem attachment; older
/// records are dropped and counted, never silently lost.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: Vec<TraceRecord>,
    capacity: usize,
    dropped: u64,
    /// Scratch for returning the ring in chronological order.
    ordered: Vec<TraceRecord>,
    stale: bool,
    head: usize,
}

impl RingSink {
    /// A ring holding at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
            ordered: Vec::new(),
            stale: false,
            head: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, record: TraceRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(record);
        } else {
            self.buf[self.head] = record;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
        self.stale = true;
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn records(&self) -> &[TraceRecord] {
        // Interior mutability is not available through `&self`; the
        // tracer calls `refresh` before reading. Unrefreshed reads see
        // the last ordered view.
        &self.ordered
    }
}

impl RingSink {
    fn refresh(&mut self) {
        if !self.stale {
            return;
        }
        self.ordered.clear();
        self.ordered.extend_from_slice(&self.buf[self.head..]);
        self.ordered.extend_from_slice(&self.buf[..self.head]);
        self.stale = false;
    }
}

/// Keeps every record for export (JSONL / Chrome trace). Unbounded:
/// intended for tests and small diagnostic runs.
#[derive(Debug, Default, Clone)]
pub struct ExportSink {
    records: Vec<TraceRecord>,
}

impl TraceSink for ExportSink {
    fn record(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

enum SinkImpl {
    Null(NullSink),
    Ring(RingSink),
    Export(ExportSink),
    Custom(Box<dyn TraceSink>),
}

impl SinkImpl {
    fn as_sink(&self) -> &dyn TraceSink {
        match self {
            SinkImpl::Null(s) => s,
            SinkImpl::Ring(s) => s,
            SinkImpl::Export(s) => s,
            SinkImpl::Custom(s) => s.as_ref(),
        }
    }

    fn as_sink_mut(&mut self) -> &mut dyn TraceSink {
        match self {
            SinkImpl::Null(s) => s,
            SinkImpl::Ring(s) => s,
            SinkImpl::Export(s) => s,
            SinkImpl::Custom(s) => s.as_mut(),
        }
    }
}

/// The tracer: one sink plus the always-on timeline aggregator.
///
/// Install a shared handle (see [`shared`]) into the engine, the UM
/// backend, and the run configuration; every layer then emits into the
/// same stream with a single `Option` branch when tracing is off.
pub struct Tracer {
    sink: SinkImpl,
    timeline: Timeline,
    emitted: u64,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("emitted", &self.emitted)
            .field("dropped", &self.sink.as_sink().dropped())
            .finish()
    }
}

impl Tracer {
    /// Tracer that keeps only the timeline roll-up.
    pub fn null() -> Self {
        Tracer {
            sink: SinkImpl::Null(NullSink),
            timeline: Timeline::default(),
            emitted: 0,
        }
    }

    /// Tracer keeping the last `capacity` raw records.
    pub fn ring(capacity: usize) -> Self {
        Tracer {
            sink: SinkImpl::Ring(RingSink::new(capacity)),
            timeline: Timeline::default(),
            emitted: 0,
        }
    }

    /// Tracer keeping every raw record for export.
    pub fn export() -> Self {
        Tracer {
            sink: SinkImpl::Export(ExportSink::default()),
            timeline: Timeline::default(),
            emitted: 0,
        }
    }

    /// Tracer over a caller-provided sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            sink: SinkImpl::Custom(sink),
            timeline: Timeline::default(),
            emitted: 0,
        }
    }

    /// Emits one event at virtual time `t` nanoseconds.
    pub fn emit(&mut self, t: u64, event: TraceEvent) {
        self.emitted += 1;
        self.timeline.observe(&event);
        self.sink.as_sink_mut().record(TraceRecord { t, event });
    }

    /// Events emitted over the tracer's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Records dropped by the sink (ring overflow).
    pub fn dropped(&self) -> u64 {
        self.sink.as_sink().dropped()
    }

    /// Retained records in chronological order.
    pub fn records(&mut self) -> &[TraceRecord] {
        if let SinkImpl::Ring(ring) = &mut self.sink {
            ring.refresh();
        }
        self.sink.as_sink().records()
    }

    /// The per-kernel aggregation.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Rolls the run up into the report section attached to
    /// `RunReport` (tail comes from ring sinks only — export sinks
    /// expose the full stream via [`Tracer::records`] instead).
    pub fn report(&mut self) -> TraceReport {
        let tail = match &mut self.sink {
            SinkImpl::Ring(ring) => {
                ring.refresh();
                ring.records().to_vec()
            }
            _ => Vec::new(),
        };
        TraceReport {
            events_emitted: self.emitted,
            events_dropped: self.sink.as_sink().dropped(),
            kernels: self.timeline.kernels().to_vec(),
            outside: self.timeline.outside().clone(),
            tail,
        }
    }

    /// Rendered JSONL, one record per line (see [`crate::export`]).
    pub fn jsonl(&mut self) -> String {
        let records = if let SinkImpl::Ring(ring) = &mut self.sink {
            ring.refresh();
            ring.records()
        } else {
            self.sink.as_sink().records()
        };
        crate::export::render_jsonl(records)
    }

    /// Rendered Chrome `trace_event` JSON (see [`crate::export`]).
    pub fn chrome_trace(&mut self) -> String {
        let records = if let SinkImpl::Ring(ring) = &mut self.sink {
            ring.refresh();
            ring.records()
        } else {
            self.sink.as_sink().records()
        };
        crate::export::render_chrome_trace(records)
    }
}

/// Shared tracer handle threaded through the simulation layers, the
/// same shape as `deepum_sim::faultinject::SharedInjector`.
pub type SharedTracer = Rc<RefCell<Tracer>>;

/// Wraps a tracer for installation into multiple layers.
pub fn shared(tracer: Tracer) -> SharedTracer {
    Rc::new(RefCell::new(tracer))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent::TlbStall { ns: n }
    }

    #[test]
    fn null_sink_keeps_only_the_timeline() {
        let mut t = Tracer::null();
        t.emit(1, ev(10));
        assert_eq!(t.emitted(), 1);
        assert_eq!(t.dropped(), 0);
        assert!(t.records().is_empty());
        assert_eq!(t.timeline().outside().stall_ns, 0); // TlbStall not rolled up
    }

    #[test]
    fn ring_sink_overflow_sets_dropped_and_keeps_tail() {
        let mut t = Tracer::ring(3);
        for i in 0..5 {
            t.emit(i, ev(i));
        }
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.records().iter().map(|r| r.t).collect();
        assert_eq!(ts, vec![2, 3, 4]);
        let report = t.report();
        assert_eq!(report.events_dropped, 2);
        assert_eq!(report.tail.len(), 3);
    }

    #[test]
    fn export_sink_keeps_everything_in_order() {
        let mut t = Tracer::export();
        for i in 0..10 {
            t.emit(i, ev(i));
        }
        assert_eq!(t.records().len(), 10);
        assert!(t.records().windows(2).all(|w| w[0].t <= w[1].t));
        assert!(t.report().tail.is_empty());
    }
}
