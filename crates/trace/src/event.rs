//! The structured event vocabulary of the tracing layer.
//!
//! Every variant carries only integers, booleans, small enums, and (for
//! kernel names) pre-existing strings — no floats, so rendered traces
//! are byte-stable across platforms, and no `format!` on the emit path.
//! Timestamps are *virtual* nanoseconds ([`deepum_sim::time::Ns`]
//! values passed as raw `u64`), never wall clock.

use serde::{Deserialize, Serialize};

/// Why an eviction victim was selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictReason {
    /// Oldest-epoch LRU block on the demand fault path.
    LruDemand,
    /// Oldest-epoch LRU block chosen by off-path pre-eviction.
    LruPre,
    /// Host OOM on write-back: a fully invalidatable victim was
    /// preferred so no backing-store copy is needed.
    HostOomInvalidatable,
    /// Second pass: the protected (predicted-window) set had to be
    /// overridden because nothing unprotected was left to evict.
    ProtectedOverride,
}

/// Degradation level of the prefetch watchdog, mirrored from
/// `deepum_sim::faultinject::DegradationState` so this crate stays
/// dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WatchdogMode {
    /// Prefetching at full configured degree.
    Normal,
    /// Prefetch degree halved.
    Throttled,
    /// Correlation prefetching off until cooldown.
    Disabled,
}

/// Steady-state memory-pressure classification of the pressure
/// governor. Defined here (rather than in `deepum_um::pressure`) so
/// trace events can carry it while this crate stays dependency-free;
/// the governor uses the type directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PressureLevel {
    /// Refault ratio below the elevated threshold; no mitigation.
    Normal,
    /// Refault ratio elevated; victim cooldown active, window held.
    Elevated,
    /// Sustained ping-pong; prefetch window shrunk until pressure drops.
    Thrashing,
}

/// Kind of an injected (chaos) fault observed by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectKind {
    /// Host-to-device DMA failure.
    DmaH2d,
    /// Device-to-host DMA failure.
    DmaD2h,
    /// Host backing store refused a write-back.
    HostOom,
    /// Fault-buffer storm (batch limit shrunk).
    FaultStorm,
    /// Correlation-table record dropped.
    CorrDrop,
    /// Kernel launch delayed.
    LaunchDelay,
    /// Device reset (hard fault).
    DeviceReset,
    /// UM driver crash (hard fault).
    DriverCrash,
    /// Uncorrectable ECC error poisoning correlation state.
    EccError,
}

/// `cudaMemAdvise`-modeled placement hint applied to a UM block.
/// Mirrored from `deepum_um::hints::Advice` so this crate stays
/// dependency-free; the hint table uses the type directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AdviceKind {
    /// Data is mostly read: keep a host copy valid so eviction never
    /// needs a write-back (duplicated read-mostly weight).
    ReadMostly,
    /// Preferred residency is the device: evict only as a last resort.
    PreferredLocation,
    /// Device accesses the range but need not keep it resident; re-fault
    /// cost is reduced (mapping kept).
    AccessedBy,
}

/// Degradation-ladder level of the SLO-aware serving layer. `Ord`
/// follows severity: `Full < ReducedWindow < DemandOnly < Shed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServeLevel {
    /// Correlation prefetching at full configured degree.
    Full,
    /// Prefetch window pressure-shrunk (`shed_load`).
    ReducedWindow,
    /// Correlation prefetching off; demand paging only.
    DemandOnly,
    /// New requests are refused with a typed `RequestShed`.
    Shed,
}

/// Why a serving request was shed instead of executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedReason {
    /// The degradation ladder is at [`ServeLevel::Shed`]: the endpoint
    /// refuses new work until pressure and miss-rate recover.
    Overload,
    /// Injected soft faults exhausted the per-request retry budget.
    RetriesExhausted,
}

/// One structured trace event.
///
/// Block numbers are raw `u64` indices (`BlockNum::index()`), page and
/// byte quantities are totals for the event, and `*_ns` durations are
/// virtual nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A kernel launch entered the GPU engine.
    KernelBegin {
        /// Per-run launch ordinal.
        seq: u64,
        /// Kernel name from the launch spec.
        name: String,
    },
    /// The launch finished (all fault rounds drained, compute retired).
    KernelEnd {
        /// Per-run launch ordinal (matches the open `KernelBegin`).
        seq: u64,
        /// Page faults the launch generated.
        faults: u64,
        /// Fault-handling stall within the launch.
        stall_ns: u64,
    },
    /// The fault buffer was drained into the UM driver.
    FaultBufferDrain {
        /// Entries handed to the fault handler.
        entries: u64,
    },
    /// SMs stalled on address translation while faults were serviced.
    TlbStall {
        /// Stall duration charged to the clock.
        ns: u64,
    },
    /// Pages of one UM block migrated host → device.
    PageMigration {
        /// UM block index.
        block: u64,
        /// Pages moved.
        pages: u64,
        /// True when moved by the prefetcher, false on the fault path.
        prefetch: bool,
        /// Bytes transferred over the interconnect.
        bytes: u64,
    },
    /// One DMA transfer completed (either direction).
    DmaTransfer {
        /// Bytes moved.
        bytes: u64,
        /// Direction: true = host → device.
        to_device: bool,
        /// Injected failures retried before success.
        retries: u64,
    },
    /// An eviction victim was chosen.
    EvictVictim {
        /// UM block index of the victim.
        block: u64,
        /// Why this block.
        reason: EvictReason,
    },
    /// Pages dropped without write-back (inactive PT block).
    Invalidate {
        /// UM block index.
        block: u64,
        /// Pages invalidated.
        pages: u64,
    },
    /// Dirty pages written back device → host.
    WriteBack {
        /// UM block index.
        block: u64,
        /// Pages written back.
        pages: u64,
        /// Bytes transferred.
        bytes: u64,
    },
    /// The GPU touched pages that the prefetcher had staged.
    PrefetchHit {
        /// UM block index.
        block: u64,
        /// Previously-untouched prefetched pages now used.
        pages: u64,
    },
    /// The execution-ID table predicted the next kernel.
    CorrelationPredict {
        /// True when the prediction matched the actual launch.
        hit: bool,
    },
    /// The chain walk followed a correlation edge.
    ChainFollow {
        /// UM block the walk emitted a command for.
        block: u64,
        /// Kernels ahead of execution the walk currently is.
        depth: u64,
    },
    /// A prefetch command entered the migration queue.
    PrefetchEnqueue {
        /// UM block index.
        block: u64,
        /// Pages the command covers.
        pages: u64,
    },
    /// A prefetch command was dropped (queue full / no space).
    PrefetchDrop {
        /// UM block index.
        block: u64,
    },
    /// The prefetch watchdog changed state.
    WatchdogTransition {
        /// State before.
        from: WatchdogMode,
        /// State after.
        to: WatchdogMode,
    },
    /// ECC poisoning degraded DeepUM to pure demand paging.
    TablesPoisoned {
        /// UM block whose correlation state was poisoned.
        block: u64,
    },
    /// The chaos layer injected a fault here.
    InjectedFault {
        /// What was injected.
        kind: InjectKind,
    },
    /// The memory-pressure governor reclassified steady-state pressure.
    PressureLevelChanged {
        /// Level before.
        from: PressureLevel,
        /// Level after.
        to: PressureLevel,
        /// EWMA refault score (percent) that drove the transition.
        score_pct: u64,
    },
    /// Victim selection passed over a block in refault cooldown.
    VictimCooldownSkip {
        /// UM block index that was spared.
        block: u64,
        /// Kernel launches left until its cooldown expires.
        remaining_kernels: u64,
    },
    /// The governor resized the effective prefetch window.
    PredictedWindowResized {
        /// Effective prefetch degree before.
        from_degree: u64,
        /// Effective prefetch degree after.
        to_degree: u64,
        /// Pressure level that drove the resize.
        level: PressureLevel,
    },
    /// The executor captured a checkpoint.
    Checkpoint {
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// A hard fault was recovered by restoring a checkpoint. The sim
    /// clock rewinds here, so timestamps are monotone only *between*
    /// `Restored` markers.
    Restored {
        /// Journaled kernels replayed after the restore.
        replayed: u64,
    },
    /// The scheduler admitted a tenant onto the shared device.
    TenantAdmitted {
        /// Raw tenant index.
        tenant: u32,
        /// Guaranteed resident floor granted, in pages.
        floor_pages: u64,
        /// Scheduling priority (higher = more kernel slots per cycle).
        priority: u32,
    },
    /// Admission control refused a tenant whose floor cannot be met.
    TenantDenied {
        /// Raw tenant index.
        tenant: u32,
        /// Pages the tenant's guaranteed floor requires.
        need: u64,
        /// Pages of floor headroom actually available.
        avail: u64,
    },
    /// Fair-share eviction charged a victim block against a tenant.
    TenantEvictionCharged {
        /// Raw tenant index the eviction was charged to.
        tenant: u32,
        /// UM block index of the victim.
        block: u64,
        /// Resident pages the victim gave up.
        pages: u64,
    },
    /// The scheduler broadcast the system-wide pressure level to a
    /// tenant so it can shed load (shrink prefetch, defer admission).
    PressureSignal {
        /// The broadcast level.
        level: PressureLevel,
    },
    /// A serving request entered an endpoint's queue.
    RequestArrived {
        /// Serving endpoint index.
        endpoint: u32,
        /// Per-run request ordinal.
        request: u64,
        /// Absolute virtual-time deadline (nanoseconds).
        deadline_ns: u64,
    },
    /// A serving request finished all its decode kernels.
    RequestCompleted {
        /// Serving endpoint index.
        endpoint: u32,
        /// Per-run request ordinal.
        request: u64,
        /// Virtual latency from arrival to completion.
        latency_ns: u64,
        /// True when the request beat its deadline.
        on_time: bool,
    },
    /// A completed request overran its virtual-time deadline.
    DeadlineMissed {
        /// Serving endpoint index.
        endpoint: u32,
        /// Per-run request ordinal.
        request: u64,
        /// Nanoseconds past the deadline at completion.
        over_ns: u64,
    },
    /// A request was refused with a typed reason — never a panic.
    RequestShed {
        /// Serving endpoint index.
        endpoint: u32,
        /// Per-run request ordinal.
        request: u64,
        /// Why it was shed.
        reason: ShedReason,
    },
    /// The degradation ladder moved between levels.
    DegradationTransition {
        /// Serving endpoint index.
        endpoint: u32,
        /// Level before.
        from: ServeLevel,
        /// Level after.
        to: ServeLevel,
        /// Deadline-miss EWMA (percent) that drove the transition.
        miss_pct: u64,
    },
    /// A `cudaMemAdvise`-modeled hint was applied to a UM block.
    HintApplied {
        /// UM block index.
        block: u64,
        /// The advice.
        advice: AdviceKind,
    },
    /// An uncorrectable ECC error retired a device page frame: the frame
    /// joins the blacklist permanently and effective capacity shrinks.
    PageRetired {
        /// Retired device frame number.
        frame: u64,
        /// Effective device capacity (pages) after the retirement.
        capacity_pages: u64,
    },
    /// A resident block was live-migrated off the device because a frame
    /// retirement shrank capacity below the resident set. The write-back
    /// DMA is out-of-band: traced, but charged to no drain or slot.
    BlockRemigrated {
        /// UM block index of the remigrated block.
        block: u64,
        /// Resident pages moved back to the host.
        pages: u64,
    },
    /// A stored checkpoint generation failed its integrity check at
    /// restore (torn write, truncation, or bit flip).
    CheckpointCorrupt {
        /// Generation index, 0 = newest stored.
        generation: u64,
    },
    /// Recovery restored from an older generation after newer ones
    /// failed verification, replaying a correspondingly longer journal.
    RecoveryFellBack {
        /// Generations skipped before one verified (≥ 1).
        generations: u64,
        /// Journaled kernels replayed after the restore.
        replayed: u64,
    },
    /// A capacity shrink revoked a tenant's floor guarantee: the floor
    /// no longer fits the worn device and the scheduler surfaces a typed
    /// floor-lost error instead of livelocking on it.
    FloorLost {
        /// Raw tenant index.
        tenant: u32,
        /// Floor pages the tenant had been guaranteed.
        floor_pages: u64,
        /// Effective device capacity (pages) at revocation.
        capacity_pages: u64,
    },
}

/// An event stamped with its virtual-time nanosecond timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Virtual time of emission, nanoseconds.
    pub t: u64,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip_through_serde() {
        let records = vec![
            TraceRecord {
                t: 0,
                event: TraceEvent::KernelBegin {
                    seq: 1,
                    name: "conv".to_string(),
                },
            },
            TraceRecord {
                t: 5,
                event: TraceEvent::EvictVictim {
                    block: 3,
                    reason: EvictReason::HostOomInvalidatable,
                },
            },
            TraceRecord {
                t: 9,
                event: TraceEvent::WatchdogTransition {
                    from: WatchdogMode::Normal,
                    to: WatchdogMode::Throttled,
                },
            },
        ];
        let v = serde::Serialize::to_value(&records);
        let back: Vec<TraceRecord> = serde::Deserialize::from_value(&v).expect("round trip");
        assert_eq!(back, records);
    }
}
