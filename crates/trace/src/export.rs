//! Cold-path trace rendering: JSONL and Chrome `trace_event` JSON.
//!
//! Nothing here runs while the simulation is executing — rendering
//! happens after a run, over records a sink retained. This is the only
//! module of the crate where string formatting is allowed (the
//! `trace-determinism` tidy lint forbids it everywhere else).

use serde::value::Value;
use serde::Serialize;

use crate::event::TraceRecord;

/// Renders records as JSONL: one serialized [`TraceRecord`] per line,
/// in emission order, with a trailing newline after the last record
/// (empty string for an empty stream).
///
/// Member order follows struct/variant declaration order, so the same
/// record stream always renders to the same bytes — the property the
/// golden-trace suite pins down.
pub fn render_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        match serde_json::to_string(record) {
            Ok(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Err(_) => {
                // The shim serializer is total over shim-derived
                // values; treat a failure as a skipped record rather
                // than aborting the export.
            }
        }
    }
    out
}

/// Parses one JSONL document back into records, skipping blank lines.
///
/// # Errors
///
/// Returns the underlying parse error message for the first malformed
/// line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        records.push(record);
    }
    Ok(records)
}

/// Adapter: the shim's `Value` is not itself `Serialize`, so wrap it
/// to hand pre-built subtrees back to the renderer.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Variant name and payload of an externally-tagged enum value.
fn variant_of(v: &Value) -> (&str, Option<&Value>) {
    match v {
        Value::String(name) => (name.as_str(), None),
        Value::Object(members) => members
            .first()
            .map(|(k, payload)| (k.as_str(), Some(payload)))
            .unwrap_or(("?", None)),
        _ => ("?", None),
    }
}

/// Renders records in Chrome's `trace_event` JSON format, loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Kernel begin/end pairs become duration (`B`/`E`) events; everything
/// else becomes an instant (`i`) event carrying its payload as `args`.
/// Timestamps are virtual microseconds (the format's native unit).
pub fn render_chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for record in records {
        let value = record.event.to_value();
        let (name, payload) = variant_of(&value);
        let (ph, shown_name) = match name {
            "KernelBegin" => {
                let kname = payload
                    .and_then(|p| p.get("name"))
                    .and_then(|n| match n {
                        Value::String(s) => Some(s.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| "kernel".to_string());
                ("B", kname)
            }
            "KernelEnd" => ("E", "kernel".to_string()),
            other => ("i", other.to_string()),
        };
        if !first {
            out.push(',');
        }
        first = false;
        // ts is microseconds; keep nanosecond precision as a fraction.
        let us = record.t / 1000;
        let frac = record.t % 1000;
        out.push_str(&format!(
            "{{\"name\":{},\"ph\":\"{ph}\",\"ts\":{us}.{frac:03},\"pid\":1,\"tid\":1",
            json_string(&shown_name)
        ));
        if ph == "i" {
            out.push_str(",\"s\":\"t\"");
        }
        if let Some(p) = payload {
            if let Ok(args) = serde_json::to_string(&Raw(p.clone())) {
                out.push_str(",\"args\":");
                out.push_str(&args);
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping for kernel/event names.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                t: 1500,
                event: TraceEvent::KernelBegin {
                    seq: 0,
                    name: "conv\"1\"".to_string(),
                },
            },
            TraceRecord {
                t: 2000,
                event: TraceEvent::PageMigration {
                    block: 7,
                    pages: 32,
                    prefetch: false,
                    bytes: 1 << 17,
                },
            },
            TraceRecord {
                t: 2500,
                event: TraceEvent::KernelEnd {
                    seq: 0,
                    faults: 1,
                    stall_ns: 500,
                },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_and_is_stable() {
        let records = sample();
        let a = render_jsonl(&records);
        let b = render_jsonl(&records);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 3);
        let back = parse_jsonl(&a).expect("parses");
        assert_eq!(back, records);
    }

    #[test]
    fn parse_rejects_garbage_with_line_number() {
        let err = parse_jsonl("{\"t\":1,\"event\":\"TlbStall\"}\nnot json\n").unwrap_err();
        assert!(err.contains("line"), "{err}");
    }

    #[test]
    fn chrome_trace_has_duration_pair_and_instants() {
        let json = render_chrome_trace(&sample());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("conv\\\"1\\\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_stream_renders_empty_documents() {
        assert_eq!(render_jsonl(&[]), "");
        assert_eq!(render_chrome_trace(&[]), "{\"traceEvents\":[]}");
        assert!(parse_jsonl("").unwrap().is_empty());
    }
}
