//! Per-kernel timeline aggregation.
//!
//! The aggregator folds the raw event stream into one summary per
//! kernel launch as events arrive, so a roll-up is available even when
//! the sink itself keeps nothing (NullSink) or only a tail (RingSink).
//! All counters are integers; the prefetch hit *ratio* is derived on
//! demand and never serialized, keeping reports byte-stable.

use serde::{Deserialize, Serialize};

use crate::event::TraceEvent;

/// Number of chain-depth histogram buckets; the last bucket saturates
/// (depth `>= CHAIN_DEPTH_BUCKETS - 1`).
pub const CHAIN_DEPTH_BUCKETS: usize = 9;

/// Roll-up of every traced event attributed to one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelTraceSummary {
    /// Launch ordinal (`u64::MAX` for the out-of-kernel bucket).
    pub seq: u64,
    /// Kernel name (empty for the out-of-kernel bucket).
    pub name: String,
    /// Page faults (from `KernelEnd`).
    pub faults: u64,
    /// Fault-buffer drains.
    pub fault_batches: u64,
    /// Pages migrated in on the demand path.
    pub pages_faulted_in: u64,
    /// Pages migrated in by the prefetcher.
    pub pages_prefetched: u64,
    /// Prefetched pages the GPU actually used.
    pub prefetch_hits: u64,
    /// Pages moved or dropped device → host.
    pub pages_out: u64,
    /// Eviction victims selected.
    pub evictions: u64,
    /// Fault-handling stall, virtual ns.
    pub stall_ns: u64,
    /// Chain-follow depth histogram; bucket `i` counts follows at
    /// `kernels_ahead == i`, last bucket saturating.
    pub chain_depth_hist: Vec<u64>,
}

impl KernelTraceSummary {
    fn new(seq: u64, name: String) -> Self {
        KernelTraceSummary {
            seq,
            name,
            faults: 0,
            fault_batches: 0,
            pages_faulted_in: 0,
            pages_prefetched: 0,
            prefetch_hits: 0,
            pages_out: 0,
            evictions: 0,
            stall_ns: 0,
            chain_depth_hist: vec![0; CHAIN_DEPTH_BUCKETS],
        }
    }

    /// True when no traced activity was attributed to this bucket.
    pub fn is_empty(&self) -> bool {
        self.faults == 0
            && self.fault_batches == 0
            && self.pages_faulted_in == 0
            && self.pages_prefetched == 0
            && self.prefetch_hits == 0
            && self.pages_out == 0
            && self.evictions == 0
            && self.stall_ns == 0
            && self.chain_depth_hist.iter().all(|&n| n == 0)
    }

    /// Fraction of prefetched pages the GPU used; 1.0 when nothing was
    /// prefetched (no prefetch is vacuously accurate).
    pub fn prefetch_hit_ratio(&self) -> f64 {
        if self.pages_prefetched == 0 {
            return 1.0;
        }
        self.prefetch_hits as f64 / self.pages_prefetched as f64
    }

    fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::KernelEnd {
                faults, stall_ns, ..
            } => {
                self.faults += faults;
                self.stall_ns += stall_ns;
            }
            TraceEvent::FaultBufferDrain { .. } => self.fault_batches += 1,
            TraceEvent::PageMigration {
                pages, prefetch, ..
            } => {
                if *prefetch {
                    self.pages_prefetched += pages;
                } else {
                    self.pages_faulted_in += pages;
                }
            }
            TraceEvent::PrefetchHit { pages, .. } => self.prefetch_hits += pages,
            TraceEvent::EvictVictim { .. } => self.evictions += 1,
            TraceEvent::Invalidate { pages, .. } | TraceEvent::WriteBack { pages, .. } => {
                self.pages_out += pages;
            }
            TraceEvent::ChainFollow { depth, .. } => {
                let bucket = (*depth as usize).min(CHAIN_DEPTH_BUCKETS - 1);
                self.chain_depth_hist[bucket] += 1;
            }
            _ => {}
        }
    }
}

/// Streaming aggregator: attributes each event to the currently open
/// kernel launch, or to a catch-all bucket between launches (tensor
/// allocation, checkpointing, out-of-kernel prefetch drains).
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    kernels: Vec<KernelTraceSummary>,
    outside: KernelTraceSummary,
    open: bool,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline {
            kernels: Vec::new(),
            outside: KernelTraceSummary::new(u64::MAX, String::new()),
            open: false,
        }
    }
}

impl Timeline {
    /// Folds one event into the aggregation.
    pub fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::KernelBegin { seq, name } => {
                self.kernels
                    .push(KernelTraceSummary::new(*seq, name.clone()));
                self.open = true;
            }
            TraceEvent::KernelEnd { .. } => {
                if let Some(cur) = self.kernels.last_mut() {
                    cur.observe(event);
                }
                self.open = false;
            }
            other => {
                let target = if self.open {
                    // `open` is only set right after a push, so
                    // last_mut() cannot miss; fall back defensively.
                    self.kernels.last_mut().unwrap_or(&mut self.outside)
                } else {
                    &mut self.outside
                };
                target.observe(other);
            }
        }
    }

    /// Per-launch summaries in launch order.
    pub fn kernels(&self) -> &[KernelTraceSummary] {
        &self.kernels
    }

    /// The catch-all bucket for events outside any kernel.
    pub fn outside(&self) -> &KernelTraceSummary {
        &self.outside
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(seq: u64) -> TraceEvent {
        TraceEvent::KernelBegin {
            seq,
            name: "k".to_string(),
        }
    }

    #[test]
    fn events_attribute_to_open_kernel() {
        let mut tl = Timeline::default();
        tl.observe(&TraceEvent::PageMigration {
            block: 0,
            pages: 4,
            prefetch: false,
            bytes: 1,
        });
        tl.observe(&begin(0));
        tl.observe(&TraceEvent::PageMigration {
            block: 1,
            pages: 8,
            prefetch: true,
            bytes: 1,
        });
        tl.observe(&TraceEvent::ChainFollow { block: 1, depth: 2 });
        tl.observe(&TraceEvent::ChainFollow {
            block: 1,
            depth: 100,
        });
        tl.observe(&TraceEvent::KernelEnd {
            seq: 0,
            faults: 3,
            stall_ns: 7,
        });
        tl.observe(&TraceEvent::Checkpoint { bytes: 10 });

        assert_eq!(tl.outside().pages_faulted_in, 4);
        let k = &tl.kernels()[0];
        assert_eq!(k.pages_prefetched, 8);
        assert_eq!(k.faults, 3);
        assert_eq!(k.stall_ns, 7);
        assert_eq!(k.chain_depth_hist[2], 1);
        assert_eq!(k.chain_depth_hist[CHAIN_DEPTH_BUCKETS - 1], 1);
    }

    #[test]
    fn hit_ratio_is_vacuously_one() {
        let s = KernelTraceSummary::new(0, String::new());
        assert!((s.prefetch_hit_ratio() - 1.0).abs() < f64::EPSILON);
        assert!(s.is_empty());
    }
}
