//! The trace section attached to a run report when tracing is on.

use serde::{Deserialize, Serialize};

use crate::event::TraceRecord;
use crate::timeline::KernelTraceSummary;

/// Roll-up of one traced run: per-kernel summaries, stream accounting,
/// and (for ring sinks) the retained tail of raw records.
///
/// Attached to `deepum_baselines::report::RunReport` as an optional
/// member that is omitted entirely when tracing is off, so untraced
/// reports stay byte-identical to pre-tracing builds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// Events emitted across the run.
    pub events_emitted: u64,
    /// Events dropped by the sink (ring overflow). Non-zero marks the
    /// `tail` as truncated.
    pub events_dropped: u64,
    /// One summary per kernel launch, in launch order.
    pub kernels: Vec<KernelTraceSummary>,
    /// Events outside any kernel (allocation, checkpoints, drains).
    pub outside: KernelTraceSummary,
    /// Last retained raw records (ring sinks only; empty otherwise).
    pub tail: Vec<TraceRecord>,
}

impl TraceReport {
    /// Total page faults attributed to kernels.
    pub fn total_faults(&self) -> u64 {
        self.kernels.iter().map(|k| k.faults).sum()
    }

    /// Whole-run prefetch hit ratio; 1.0 when nothing was prefetched.
    pub fn prefetch_hit_ratio(&self) -> f64 {
        let prefetched: u64 = self.kernels.iter().map(|k| k.pages_prefetched).sum::<u64>()
            + self.outside.pages_prefetched;
        if prefetched == 0 {
            return 1.0;
        }
        let hits: u64 =
            self.kernels.iter().map(|k| k.prefetch_hits).sum::<u64>() + self.outside.prefetch_hits;
        hits as f64 / prefetched as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use crate::sink::Tracer;

    #[test]
    fn report_round_trips_through_serde() {
        let mut t = Tracer::ring(2);
        t.emit(
            0,
            TraceEvent::KernelBegin {
                seq: 0,
                name: "gemm".to_string(),
            },
        );
        t.emit(
            3,
            TraceEvent::PageMigration {
                block: 1,
                pages: 2,
                prefetch: true,
                bytes: 8192,
            },
        );
        t.emit(4, TraceEvent::PrefetchHit { block: 1, pages: 2 });
        t.emit(
            5,
            TraceEvent::KernelEnd {
                seq: 0,
                faults: 1,
                stall_ns: 10,
            },
        );
        let report = t.report();
        assert_eq!(report.events_emitted, 4);
        assert_eq!(report.events_dropped, 2);
        assert_eq!(report.total_faults(), 1);
        assert!((report.prefetch_hit_ratio() - 1.0).abs() < f64::EPSILON);
        let v = serde::Serialize::to_value(&report);
        let back = TraceReport::from_value(&v).expect("round trip");
        assert_eq!(back, report);
    }
}
