//! Multi-generation, corruption-tolerant checkpoint storage (DESIGN.md
//! §18).
//!
//! The single-checkpoint protocol of DESIGN.md §11 trusts its one stored
//! image completely: a torn write during the checkpoint store turns the
//! next hard fault into an unrecoverable run. This module replaces that
//! single trusted image with a bounded **generation ring**: every store
//! pushes a new [`Generation`] to the front and the oldest beyond the
//! ring depth falls off. Restore walks the ring newest-first; a
//! generation whose image fails validation (the snapshot envelope's
//! checksum is verified before a single field is decoded) is skipped and
//! the next-older one is tried, at the price of replaying a
//! correspondingly longer launch journal. Only when *every* generation
//! fails does recovery surface the typed
//! [`RecoveryError::AllCheckpointsCorrupt`].
//!
//! The ring stores images as opaque bytes — it does not know the codec —
//! so the same structure serves the UM executor's composite checkpoints
//! and any future snapshot producer. Corruption is injected at *store*
//! time (`deepum_sim::faultinject::CkptCorruption` models torn writes,
//! truncation, and bit flips of the persisted image) and detected at
//! *restore* time, exactly like real durable storage.

use core::fmt;

/// Default number of checkpoint generations retained.
pub const DEFAULT_RING_DEPTH: usize = 3;

/// One stored checkpoint generation.
///
/// `image` is the durable part — the serialized snapshot envelope, the
/// bytes a torn write would damage. `extra` carries state that is
/// deliberately *not* durable (e.g. the fault injector's transient
/// slice, which models in-flight hardware state rather than persisted
/// data). `journal_mark` is the kernel-launch sequence number at store
/// time: restoring this generation replays every journaled launch with
/// `seq >= journal_mark`.
#[derive(Debug, Clone)]
pub struct Generation<T> {
    /// Serialized snapshot image (possibly damaged in storage).
    pub image: Vec<u8>,
    /// Kernel-launch sequence number at store time.
    pub journal_mark: u64,
    /// Non-durable sidecar state restored alongside the image.
    pub extra: T,
}

/// Why a multi-generation restore could not produce a usable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// A hard fault fired before the first checkpoint was stored.
    NoCheckpoint,
    /// Every retained generation failed validation or decode.
    AllCheckpointsCorrupt {
        /// Generations tried (the ring's occupancy at restore time).
        generations: u64,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::NoCheckpoint => {
                write!(f, "hard fault before the first checkpoint")
            }
            RecoveryError::AllCheckpointsCorrupt { generations } => write!(
                f,
                "all {generations} retained checkpoint generation(s) are corrupt"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Bounded ring of checkpoint generations, newest first.
#[derive(Debug, Clone)]
pub struct CheckpointRing<T> {
    /// Newest generation at index 0.
    generations: Vec<Generation<T>>,
    depth: usize,
}

impl<T> CheckpointRing<T> {
    /// Creates a ring retaining up to `depth` generations (minimum 1).
    pub fn new(depth: usize) -> Self {
        CheckpointRing {
            generations: Vec::new(),
            depth: depth.max(1),
        }
    }

    /// Maximum generations retained.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Generations currently stored.
    pub fn len(&self) -> usize {
        self.generations.len()
    }

    /// True when no checkpoint has been stored yet.
    pub fn is_empty(&self) -> bool {
        self.generations.is_empty()
    }

    /// Stores a new generation as the newest, dropping the oldest when
    /// the ring is full.
    pub fn store(&mut self, generation: Generation<T>) {
        self.generations.insert(0, generation);
        self.generations.truncate(self.depth);
    }

    /// The retained generations, newest first.
    pub fn iter(&self) -> impl Iterator<Item = &Generation<T>> {
        self.generations.iter()
    }

    /// The oldest retained generation's journal mark — the journal may
    /// evict every entry with a smaller launch sequence number, since no
    /// restore can ever need it again.
    pub fn oldest_mark(&self) -> Option<u64> {
        self.generations.last().map(|g| g.journal_mark)
    }

    /// Walks the ring newest-first, calling `attempt` on each generation
    /// until one restores. Returns the zero-based generation index that
    /// succeeded (0 = newest) and the closure's result;
    /// [`RecoveryError::NoCheckpoint`] on an empty ring;
    /// [`RecoveryError::AllCheckpointsCorrupt`] when every attempt
    /// returned an error. `on_corrupt` observes each failed generation
    /// index (for tracing) before the next-older one is tried.
    pub fn restore_with<R, E>(
        &self,
        mut attempt: impl FnMut(&Generation<T>) -> Result<R, E>,
        mut on_corrupt: impl FnMut(u64, &E),
    ) -> Result<(u64, R), RecoveryError> {
        if self.generations.is_empty() {
            return Err(RecoveryError::NoCheckpoint);
        }
        for (i, generation) in self.generations.iter().enumerate() {
            let index = deepum_mem::u64_from_usize(i);
            match attempt(generation) {
                Ok(r) => return Ok((index, r)),
                Err(e) => on_corrupt(index, &e),
            }
        }
        Err(RecoveryError::AllCheckpointsCorrupt {
            generations: deepum_mem::u64_from_usize(self.generations.len()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generation(tag: u8, mark: u64) -> Generation<u8> {
        Generation {
            image: vec![tag; 4],
            journal_mark: mark,
            extra: tag,
        }
    }

    #[test]
    fn ring_retains_newest_depth_generations() {
        let mut ring = CheckpointRing::new(3);
        for i in 0..5u8 {
            ring.store(generation(i, u64::from(i)));
        }
        assert_eq!(ring.len(), 3);
        let tags: Vec<u8> = ring.iter().map(|g| g.extra).collect();
        assert_eq!(tags, vec![4, 3, 2]);
        assert_eq!(ring.oldest_mark(), Some(2));
    }

    #[test]
    fn depth_is_clamped_to_one() {
        let mut ring = CheckpointRing::new(0);
        ring.store(generation(1, 0));
        ring.store(generation(2, 1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.iter().next().map(|g| g.extra), Some(2));
    }

    #[test]
    fn restore_prefers_the_newest_generation() {
        let mut ring = CheckpointRing::new(3);
        ring.store(generation(1, 10));
        ring.store(generation(2, 20));
        let (index, tag) = ring
            .restore_with(|g| Ok::<u8, ()>(g.extra), |_, _| {})
            .expect("restores");
        assert_eq!((index, tag), (0, 2));
    }

    #[test]
    fn restore_falls_back_past_corrupt_generations() {
        let mut ring = CheckpointRing::new(3);
        ring.store(generation(1, 10));
        ring.store(generation(2, 20));
        ring.store(generation(3, 30));
        let mut corrupt_seen = Vec::new();
        let (index, tag) = ring
            .restore_with(
                |g| {
                    if g.extra == 3 || g.extra == 2 {
                        Err("checksum mismatch")
                    } else {
                        Ok(g.extra)
                    }
                },
                |i, _| corrupt_seen.push(i),
            )
            .expect("oldest generation restores");
        assert_eq!((index, tag), (2, 1));
        assert_eq!(corrupt_seen, vec![0, 1]);
    }

    #[test]
    fn all_corrupt_is_a_typed_error() {
        let mut ring = CheckpointRing::new(2);
        ring.store(generation(1, 0));
        ring.store(generation(2, 1));
        let err = ring
            .restore_with(|_| Err::<(), _>("damaged"), |_, _| {})
            .unwrap_err();
        assert_eq!(err, RecoveryError::AllCheckpointsCorrupt { generations: 2 });
    }

    #[test]
    fn empty_ring_reports_no_checkpoint() {
        let ring: CheckpointRing<()> = CheckpointRing::new(3);
        let err = ring
            .restore_with(|_| Ok::<(), ()>(()), |_, _| {})
            .unwrap_err();
        assert_eq!(err, RecoveryError::NoCheckpoint);
    }
}
