//! The execution ID correlation table (paper Fig. 6).

use deepum_runtime::exec_table::ExecId;
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use serde::{Deserialize, Serialize};

/// One record in an execution-table entry: "the first three IDs represent
/// the previously executed kernels right before the last kernel [...] the
/// last ID represents the next kernel to execute".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecRecord {
    /// The three kernels executed before the entry's kernel, oldest
    /// first.
    pub prev: [ExecId; 3],
    /// The kernel observed to execute next.
    pub next: ExecId,
}

/// The single, global execution-ID correlation table.
///
/// Entries are indexed densely by [`ExecId`]. "The number of records each
/// entry contains is variable [...] each entry can hold all history of
/// successor kernels' execution IDs. DeepUM chooses this scheme to
/// predict the next kernel to be executed as accurately as possible."
///
/// Records within an entry are MRU-ordered; prediction requires an exact
/// match on the three-kernel context, which is what makes next-kernel
/// prediction essentially perfect once a training iteration has repeated.
///
/// # Example
///
/// ```
/// use deepum_core::correlation::ExecCorrelationTable;
/// use deepum_runtime::exec_table::ExecId;
///
/// let mut t = ExecCorrelationTable::new();
/// let ctx = [ExecId(7), ExecId(9), ExecId(92)];
/// t.record(ExecId(0), ctx, ExecId(75));
/// assert_eq!(t.predict(ExecId(0), ctx), Some(ExecId(75)));
/// assert_eq!(t.predict(ExecId(0), [ExecId(1); 3]), None);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ExecCorrelationTable {
    entries: Vec<Vec<ExecRecord>>,
    records: usize,
}

impl ExecCorrelationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that kernel `current`, executed after the context `prev`
    /// (oldest first), was followed by kernel `next`.
    ///
    /// If a record with the same context exists its successor is updated
    /// and it moves to MRU position; otherwise a record is added.
    pub fn record(&mut self, current: ExecId, prev: [ExecId; 3], next: ExecId) {
        let idx = current.index();
        if idx >= self.entries.len() {
            self.entries.resize_with(idx + 1, Vec::new);
        }
        let entry = &mut self.entries[idx];
        if let Some(pos) = entry.iter().position(|r| r.prev == prev) {
            let mut rec = entry.remove(pos);
            rec.next = next;
            entry.insert(0, rec);
        } else {
            entry.insert(0, ExecRecord { prev, next });
            self.records += 1;
        }
    }

    /// Predicts the kernel that will follow `current` given the context
    /// `prev`; `None` if no record matches the context exactly.
    pub fn predict(&self, current: ExecId, prev: [ExecId; 3]) -> Option<ExecId> {
        self.entries
            .get(current.index())?
            .iter()
            .find(|r| r.prev == prev)
            .map(|r| r.next)
    }

    /// Records for `current`'s entry, MRU first (diagnostics).
    pub fn records_of(&self, current: ExecId) -> &[ExecRecord] {
        self.entries
            .get(current.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of entries (distinct execution IDs seen as `current`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Total records across all entries.
    pub fn total_records(&self) -> usize {
        self.records
    }

    /// Writes every entry's MRU-ordered records into a checkpoint
    /// payload.
    pub(crate) fn encode_into(&self, w: &mut SnapshotWriter) {
        w.u64(deepum_mem::u64_from_usize(self.entries.len()));
        for entry in &self.entries {
            w.u64(deepum_mem::u64_from_usize(entry.len()));
            for rec in entry {
                for id in rec.prev {
                    w.u32(id.0);
                }
                w.u32(rec.next.0);
            }
        }
    }

    /// Reads a table written by [`ExecCorrelationTable::encode_into`];
    /// the record count is recomputed from the decoded entries.
    pub(crate) fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let num_entries = r.len_prefix(8)?;
        let mut entries = Vec::with_capacity(num_entries);
        let mut records = 0usize;
        for _ in 0..num_entries {
            let count = r.len_prefix(16)?;
            let mut entry = Vec::with_capacity(count);
            for _ in 0..count {
                let mut prev = [ExecId(0); 3];
                for id in &mut prev {
                    *id = ExecId(r.u32()?);
                }
                let next = ExecId(r.u32()?);
                entry.push(ExecRecord { prev, next });
            }
            records += entry.len();
            entries.push(entry);
        }
        Ok(ExecCorrelationTable { entries, records })
    }

    /// Approximate memory footprint, for Table 4 accounting.
    pub fn memory_bytes(&self) -> usize {
        let base = core::mem::size_of::<Self>();
        let vecs = self.entries.len() * core::mem::size_of::<Vec<ExecRecord>>();
        let recs = self.records * core::mem::size_of::<ExecRecord>();
        base + vecs + recs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const fn e(i: u32) -> ExecId {
        ExecId(i)
    }

    #[test]
    fn exact_context_predicts() {
        let mut t = ExecCorrelationTable::new();
        t.record(e(0), [e(7), e(9), e(92)], e(75));
        assert_eq!(t.predict(e(0), [e(7), e(9), e(92)]), Some(e(75)));
    }

    #[test]
    fn different_context_does_not_predict() {
        let mut t = ExecCorrelationTable::new();
        t.record(e(0), [e(7), e(9), e(92)], e(75));
        assert_eq!(t.predict(e(0), [e(9), e(7), e(92)]), None);
        assert_eq!(t.predict(e(1), [e(7), e(9), e(92)]), None);
    }

    #[test]
    fn same_context_updates_in_place() {
        let mut t = ExecCorrelationTable::new();
        let ctx = [e(1), e(2), e(3)];
        t.record(e(0), ctx, e(10));
        t.record(e(0), ctx, e(11));
        assert_eq!(t.predict(e(0), ctx), Some(e(11)));
        assert_eq!(t.total_records(), 1);
    }

    #[test]
    fn entries_hold_variable_records() {
        let mut t = ExecCorrelationTable::new();
        for i in 0..10 {
            t.record(e(1), [e(i), e(i + 1), e(i + 2)], e(100 + i));
        }
        assert_eq!(t.records_of(e(1)).len(), 10);
        // MRU order: last recorded first.
        assert_eq!(t.records_of(e(1))[0].next, e(109));
        // All contexts remain predictable.
        for i in 0..10 {
            assert_eq!(
                t.predict(e(1), [e(i), e(i + 1), e(i + 2)]),
                Some(e(100 + i))
            );
        }
    }

    #[test]
    fn memory_grows_with_records() {
        let mut t = ExecCorrelationTable::new();
        let before = t.memory_bytes();
        for i in 0..100 {
            t.record(e(i), [e(0), e(1), e(2)], e(i + 1));
        }
        assert!(t.memory_bytes() > before);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn empty_entry_lookup_is_none() {
        let t = ExecCorrelationTable::new();
        assert!(t.is_empty());
        assert_eq!(t.predict(e(42), [e(0); 3]), None);
        assert!(t.records_of(e(42)).is_empty());
    }
}
