//! Correlation tables (paper Section 4).
//!
//! DeepUM adapts pair-based correlation prefetching to UM blocks using
//! two table kinds:
//!
//! * [`ExecCorrelationTable`] — one global table over kernel execution
//!   IDs. Each entry holds a *variable* number of `(prev₃, next)`
//!   records, so the next-kernel prediction can use full context: kernel
//!   misprediction is expensive, block misprediction is cheap (Fig. 6).
//! * [`BlockCorrelationTable`] — one per execution ID, set-associative
//!   (`NumRows × Assoc`), each way holding `NumSuccs` MRU-ordered
//!   successor blocks, plus the *start*/*end* block pointers that anchor
//!   chaining (Fig. 7). `NumLevels = 1` because chaining substitutes for
//!   multi-level successor storage.
//!
//! [`pair::PairCorrelationTable`] is the original multi-level cache-line
//! scheme of Section 4.1, kept as a faithful reference implementation
//! (and ablation subject); [`stride::StridePrefetcher`] is the
//! stride-based family the paper decided against, for the same purpose.

pub mod block;
pub mod exec;
pub mod pair;
pub mod stride;

pub use block::BlockCorrelationTable;
pub use exec::{ExecCorrelationTable, ExecRecord};
pub use pair::PairCorrelationTable;
pub use stride::StridePrefetcher;
