//! Stride-based correlation prefetching (paper Section 4, Chen &
//! Baer '92).
//!
//! The paper contrasts two classic correlation-prefetching families and
//! picks the pair-based one: "The stride-based correlation
//! prefetching finds stride patterns in the sequence of missed
//! addresses, while the pair-based correlation prefetching finds a
//! correlation between missed addresses. DeepUM is based on the
//! pair-based correlation prefetching technique."
//!
//! This module implements the road not taken, as a reference point for
//! ablations: a classic reference-prediction table keyed by a context
//! (here: the execution ID, standing in for the PC of the cache-line
//! original), tracking the last address, the last stride, and a 2-bit
//! confidence state.

use deepum_runtime::exec_table::ExecId;

/// Per-context predictor state (a reference-prediction-table row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: ExecId,
    last: u64,
    stride: i64,
    /// 0 = invalid, 1 = training, 2 = steady, 3 = locked-in.
    confidence: u8,
}

/// A stride predictor over abstract `u64` addresses (UM block numbers),
/// keyed by execution ID.
///
/// # Example
///
/// ```
/// use deepum_core::correlation::StridePrefetcher;
/// use deepum_runtime::exec_table::ExecId;
///
/// let mut p = StridePrefetcher::new(64, 4);
/// let k = ExecId(0);
/// p.on_miss(k, 10);
/// p.on_miss(k, 12); // stride 2 observed
/// p.on_miss(k, 14); // confirmed once
/// let predictions = p.on_miss(k, 16); // confirmed twice: predict
/// assert_eq!(predictions, vec![18, 20, 22, 24]);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    entries: Vec<Option<Entry>>,
    degree: usize,
}

impl StridePrefetcher {
    /// Creates a predictor with `rows` table rows issuing `degree`
    /// prefetches per confirmed stride.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `degree` is zero.
    pub fn new(rows: usize, degree: usize) -> Self {
        assert!(rows > 0 && degree > 0);
        StridePrefetcher {
            entries: vec![None; rows],
            degree,
        }
    }

    fn row(&self, exec: ExecId) -> usize {
        (exec.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % self.entries.len()
    }

    /// Observes a miss on `addr` in context `exec`; returns addresses to
    /// prefetch (empty until a stride is confirmed twice).
    pub fn on_miss(&mut self, exec: ExecId, addr: u64) -> Vec<u64> {
        let row = self.row(exec);
        let entry = &mut self.entries[row];
        match entry {
            Some(e) if e.tag == exec => {
                let stride = addr as i64 - e.last as i64;
                if stride == e.stride && stride != 0 {
                    e.confidence = (e.confidence + 1).min(3);
                } else {
                    // A broken stride returns the entry to training; a
                    // decrement would keep mispredicting through the
                    // transition (classic RPT transient state).
                    e.confidence = 0;
                    e.stride = stride;
                }
                e.last = addr;
                if e.confidence >= 2 && e.stride != 0 {
                    let stride = e.stride;
                    return (1..=self.degree as i64)
                        .filter_map(|i| addr.checked_add_signed(stride * i))
                        .collect();
                }
                Vec::new()
            }
            _ => {
                *entry = Some(Entry {
                    tag: exec,
                    last: addr,
                    stride: 0,
                    confidence: 0,
                });
                Vec::new()
            }
        }
    }

    /// Number of live entries (diagnostics).
    pub fn occupied(&self) -> usize {
        self.entries.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: ExecId = ExecId(7);

    #[test]
    fn constant_stride_locks_in() {
        let mut p = StridePrefetcher::new(16, 2);
        assert!(p.on_miss(K, 100).is_empty()); // entry created
        assert!(p.on_miss(K, 104).is_empty()); // stride learned
        assert!(p.on_miss(K, 108).is_empty()); // first confirmation
        assert_eq!(p.on_miss(K, 112), vec![116, 120]); // confirmed twice
        assert_eq!(p.on_miss(K, 116), vec![120, 124]);
    }

    #[test]
    fn irregular_pattern_never_predicts() {
        let mut p = StridePrefetcher::new(16, 4);
        let mut out = Vec::new();
        for addr in [5u64, 90, 13, 77, 2, 64, 31] {
            out.extend(p.on_miss(K, addr));
        }
        assert!(out.is_empty(), "predicted {out:?} from noise");
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(16, 1);
        for a in [0u64, 2, 4, 6] {
            p.on_miss(K, a);
        }
        assert!(!p.on_miss(K, 8).is_empty());
        // Break the pattern: prediction stops until retrained.
        assert!(p.on_miss(K, 100).is_empty());
        assert!(p.on_miss(K, 103).is_empty());
    }

    #[test]
    fn contexts_are_independent() {
        let mut p = StridePrefetcher::new(64, 1);
        let a = ExecId(1);
        let b = ExecId(2);
        for i in 0..5u64 {
            p.on_miss(a, i * 4);
            p.on_miss(b, 1000 - i * 8);
        }
        assert_eq!(p.on_miss(a, 20), vec![24]);
        assert_eq!(p.on_miss(b, 960), vec![952]);
    }

    #[test]
    fn zero_stride_is_not_predicted() {
        let mut p = StridePrefetcher::new(16, 4);
        for _ in 0..6 {
            assert!(p.on_miss(K, 42).is_empty());
        }
    }

    #[test]
    fn row_conflicts_evict() {
        let mut p = StridePrefetcher::new(1, 1);
        for i in 0..4u64 {
            p.on_miss(ExecId(1), i * 2);
        }
        // A different context steals the single row.
        p.on_miss(ExecId(2), 5);
        assert_eq!(p.occupied(), 1);
        // Context 1 must retrain.
        assert!(p.on_miss(ExecId(1), 8).is_empty());
        assert!(p.on_miss(ExecId(1), 10).is_empty());
    }
}
