//! The UM block correlation table (paper Fig. 7).

use deepum_mem::BlockNum;
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// One way of a set: a tagged block and its MRU-ordered successors.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Way {
    tag: BlockNum,
    /// MRU first; at most `NumSuccs` entries.
    succs: Vec<BlockNum>,
}

/// A row (set) of the table: at most `Assoc` ways, MRU first.
#[derive(Debug, Default, Clone)]
struct Row {
    ways: Vec<Way>,
}

/// Per-execution-ID correlation table over UM blocks.
///
/// "A block table exists for each execution ID and records a history of
/// UM block accesses within the corresponding CUDA kernel." Rows are
/// selected by hashing the block number; each row holds `Assoc` ways to
/// reduce conflicts; each way stores up to `NumSuccs` MRU-ordered
/// successor blocks (`NumLevels = 1` — chaining replaces deeper levels).
/// The table also tracks the **start** block (first faulted after the
/// kernel transition) and **end** block (last faulted before the next
/// transition), the anchors for chaining.
///
/// # Example
///
/// ```
/// use deepum_core::correlation::BlockCorrelationTable;
/// use deepum_mem::BlockNum;
///
/// let mut t = BlockCorrelationTable::new(128, 2, 4);
/// t.record_pair(BlockNum::new(1), BlockNum::new(2));
/// t.record_pair(BlockNum::new(1), BlockNum::new(3));
/// // MRU first: the most recent successor leads.
/// assert_eq!(
///     t.successors(BlockNum::new(1)),
///     &[BlockNum::new(3), BlockNum::new(2)]
/// );
/// ```
#[derive(Debug, Clone)]
pub struct BlockCorrelationTable {
    rows: Vec<Row>,
    assoc: usize,
    num_succs: usize,
    start: Option<BlockNum>,
    end: Option<BlockNum>,
    lookups: u64,
    updates: u64,
}

impl BlockCorrelationTable {
    /// Creates a table with the given geometry (`NumRows`, `Assoc`,
    /// `NumSuccs` — Table 6's parameters).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(num_rows: usize, assoc: usize, num_succs: usize) -> Self {
        assert!(num_rows > 0, "NumRows must be positive");
        assert!(assoc > 0, "Assoc must be positive");
        assert!(num_succs > 0, "NumSuccs must be positive");
        BlockCorrelationTable {
            rows: vec![Row::default(); num_rows],
            assoc,
            num_succs,
            start: None,
            end: None,
            lookups: 0,
            updates: 0,
        }
    }

    fn row_of(&self, block: BlockNum) -> usize {
        // Fibonacci multiplicative hash spreads consecutive block numbers
        // across rows.
        (block.index().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.rows.len()
    }

    /// Records that a fault on `succ` followed a fault on `prev` within
    /// this kernel. MRU-updates both the way and its successor list,
    /// evicting the LRU way when the set is full.
    pub fn record_pair(&mut self, prev: BlockNum, succ: BlockNum) {
        if prev == succ {
            return;
        }
        self.updates += 1;
        let assoc = self.assoc;
        let num_succs = self.num_succs;
        let row_idx = self.row_of(prev);
        let row = &mut self.rows[row_idx];

        let way_pos = row.ways.iter().position(|w| w.tag == prev);
        let mut way = match way_pos {
            Some(pos) => row.ways.remove(pos),
            None => Way {
                tag: prev,
                succs: Vec::with_capacity(num_succs),
            },
        };

        if let Some(pos) = way.succs.iter().position(|&s| s == succ) {
            way.succs.remove(pos);
        }
        way.succs.insert(0, succ);
        way.succs.truncate(num_succs);

        row.ways.insert(0, way);
        row.ways.truncate(assoc);
    }

    /// Successors recorded for `block`, MRU first; empty if the block has
    /// no way in the table (never seen, or evicted by set conflict).
    pub fn successors(&self, block: BlockNum) -> &[BlockNum] {
        let row = &self.rows[self.row_of(block)];
        row.ways
            .iter()
            .find(|w| w.tag == block)
            .map(|w| w.succs.as_slice())
            .unwrap_or(&[])
    }

    /// Records a lookup for instrumentation (the driver counts these).
    pub fn note_lookup(&mut self) {
        self.lookups += 1;
    }

    /// Sets the start block (first faulted block after the kernel
    /// transition into this execution ID).
    pub fn set_start(&mut self, block: BlockNum) {
        self.start = Some(block);
    }

    /// Sets the end block (last faulted block before the transition out).
    pub fn set_end(&mut self, block: BlockNum) {
        self.end = Some(block);
    }

    /// The chaining entry point for this kernel.
    pub fn start(&self) -> Option<BlockNum> {
        self.start
    }

    /// The chaining exit marker for this kernel.
    pub fn end(&self) -> Option<BlockNum> {
        self.end
    }

    /// `(NumRows, Assoc, NumSuccs)` geometry.
    pub fn geometry(&self) -> (usize, usize, usize) {
        (self.rows.len(), self.assoc, self.num_succs)
    }

    /// Number of occupied ways (diagnostics).
    pub fn occupied_ways(&self) -> usize {
        self.rows.iter().map(|r| r.ways.len()).sum()
    }

    /// Lifetime pair-record updates.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Writes the table — geometry, anchors, counters, and every way's
    /// MRU-ordered successor list — into a checkpoint payload.
    pub(crate) fn encode_into(&self, w: &mut SnapshotWriter) {
        w.u64(deepum_mem::u64_from_usize(self.rows.len()));
        w.u64(deepum_mem::u64_from_usize(self.assoc));
        w.u64(deepum_mem::u64_from_usize(self.num_succs));
        for opt in [self.start, self.end] {
            w.bool(opt.is_some());
            if let Some(b) = opt {
                w.block(b);
            }
        }
        w.u64(self.lookups);
        w.u64(self.updates);
        for row in &self.rows {
            w.u64(deepum_mem::u64_from_usize(row.ways.len()));
            for way in &row.ways {
                w.block(way.tag);
                w.u64(deepum_mem::u64_from_usize(way.succs.len()));
                for &s in &way.succs {
                    w.block(s);
                }
            }
        }
    }

    /// Reads a table written by [`BlockCorrelationTable::encode_into`].
    pub(crate) fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let geometry: Vec<usize> = (0..3)
            .map(|_| {
                r.u64().and_then(|v| {
                    usize::try_from(v).map_err(|_| {
                        SnapshotError::Corrupt(format!("table geometry {v} overflows usize"))
                    })
                })
            })
            .collect::<Result<_, _>>()?;
        let (num_rows, assoc, num_succs) = (geometry[0], geometry[1], geometry[2]);
        if num_rows == 0 || assoc == 0 || num_succs == 0 {
            return Err(SnapshotError::Corrupt(format!(
                "degenerate table geometry ({num_rows}, {assoc}, {num_succs})"
            )));
        }
        let start = if r.bool()? { Some(r.block()?) } else { None };
        let end = if r.bool()? { Some(r.block()?) } else { None };
        let lookups = r.u64()?;
        let updates = r.u64()?;
        let mut rows = Vec::with_capacity(num_rows);
        for _ in 0..num_rows {
            let num_ways = r.len_prefix(16)?;
            if num_ways > assoc {
                return Err(SnapshotError::Corrupt(format!(
                    "row has {num_ways} ways, associativity is {assoc}"
                )));
            }
            let mut ways = Vec::with_capacity(num_ways);
            for _ in 0..num_ways {
                let tag = r.block()?;
                let count = r.len_prefix(8)?;
                if count > num_succs {
                    return Err(SnapshotError::Corrupt(format!(
                        "way has {count} successors, limit is {num_succs}"
                    )));
                }
                let mut succs = Vec::with_capacity(num_succs);
                for _ in 0..count {
                    succs.push(r.block()?);
                }
                ways.push(Way { tag, succs });
            }
            rows.push(Row { ways });
        }
        Ok(BlockCorrelationTable {
            rows,
            assoc,
            num_succs,
            start,
            end,
            lookups,
            updates,
        })
    }

    /// Full-capacity memory footprint of the table, matching how the real
    /// kernel module would allocate it (Table 4 accounting):
    /// `NumRows × Assoc` ways of one tag plus `NumSuccs` successor slots.
    pub fn memory_bytes(&self) -> usize {
        let way_bytes = core::mem::size_of::<BlockNum>() * (1 + self.num_succs);
        core::mem::size_of::<Self>() + self.rows.len() * self.assoc * way_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockNum {
        BlockNum::new(i)
    }

    #[test]
    fn successors_mru_ordered_and_deduped() {
        let mut t = BlockCorrelationTable::new(64, 2, 4);
        t.record_pair(b(1), b(2));
        t.record_pair(b(1), b(3));
        t.record_pair(b(1), b(2)); // moves 2 back to front
        assert_eq!(t.successors(b(1)), &[b(2), b(3)]);
    }

    #[test]
    fn successor_list_truncates_to_num_succs() {
        let mut t = BlockCorrelationTable::new(64, 2, 2);
        t.record_pair(b(1), b(10));
        t.record_pair(b(1), b(11));
        t.record_pair(b(1), b(12));
        assert_eq!(t.successors(b(1)), &[b(12), b(11)]);
    }

    #[test]
    fn self_pair_is_ignored() {
        let mut t = BlockCorrelationTable::new(64, 2, 4);
        t.record_pair(b(1), b(1));
        assert!(t.successors(b(1)).is_empty());
        assert_eq!(t.updates(), 0);
    }

    #[test]
    fn set_conflicts_evict_lru_way() {
        // One row, one way: every distinct tag evicts the previous one.
        let mut t = BlockCorrelationTable::new(1, 1, 4);
        t.record_pair(b(1), b(2));
        t.record_pair(b(3), b(4));
        assert!(t.successors(b(1)).is_empty());
        assert_eq!(t.successors(b(3)), &[b(4)]);
    }

    #[test]
    fn assoc_keeps_conflicting_tags() {
        let mut t = BlockCorrelationTable::new(1, 2, 4);
        t.record_pair(b(1), b(2));
        t.record_pair(b(3), b(4));
        assert_eq!(t.successors(b(1)), &[b(2)]);
        assert_eq!(t.successors(b(3)), &[b(4)]);
        assert_eq!(t.occupied_ways(), 2);
    }

    #[test]
    fn start_end_pointers() {
        let mut t = BlockCorrelationTable::new(64, 2, 4);
        assert_eq!(t.start(), None);
        t.set_start(b(5));
        t.set_end(b(9));
        assert_eq!(t.start(), Some(b(5)));
        assert_eq!(t.end(), Some(b(9)));
    }

    #[test]
    fn memory_is_capacity_based() {
        let small = BlockCorrelationTable::new(128, 2, 4);
        let big = BlockCorrelationTable::new(2048, 2, 4);
        assert!(big.memory_bytes() > 10 * small.memory_bytes());
        // Recording does not change the footprint (preallocated).
        let mut t = BlockCorrelationTable::new(128, 2, 4);
        let before = t.memory_bytes();
        t.record_pair(b(1), b(2));
        assert_eq!(t.memory_bytes(), before);
    }

    #[test]
    #[should_panic(expected = "NumRows must be positive")]
    fn zero_rows_rejected() {
        let _ = BlockCorrelationTable::new(0, 2, 4);
    }
}
