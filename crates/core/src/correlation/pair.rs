//! The original pair-based correlation prefetcher (paper Section 4.1,
//! Fig. 5).
//!
//! Kept as a faithful reference implementation of the cache-line scheme
//! DeepUM adapts: a single set-associative table whose entries hold
//! `NumLevels` levels of `NumSucc` MRU-ordered successor addresses, with
//! `Last` and `SecondLast` pointers to the two most recent misses. DeepUM
//! departs from this by (a) splitting kernel-level and block-level
//! correlation into two table kinds and (b) using a single level plus
//! chaining. The benchmark suite ablates DeepUM's tables against this
//! classic design.

/// One entry: a tagged address and its per-level successor lists.
#[derive(Debug, Clone)]
struct Entry {
    tag: u64,
    /// `levels[l]` holds successors at distance `l + 1`, MRU first.
    levels: Vec<Vec<u64>>,
}

#[derive(Debug, Default, Clone)]
struct Set {
    entries: Vec<Entry>,
}

/// Classic pair-based correlation table over abstract `u64` addresses.
///
/// # Example
///
/// ```
/// use deepum_core::correlation::PairCorrelationTable;
///
/// let mut t = PairCorrelationTable::new(64, 1, 2, 2);
/// t.on_miss(10); // a
/// t.on_miss(20); // b
/// t.on_miss(30); // c  -> recorded under both a (level 2) and b (level 1)
/// let prefetch = t.on_miss(10); // miss a again: prefetch its successors
/// assert!(prefetch.contains(&20) && prefetch.contains(&30));
/// ```
#[derive(Debug, Clone)]
pub struct PairCorrelationTable {
    sets: Vec<Set>,
    assoc: usize,
    num_levels: usize,
    num_succ: usize,
    last: Option<u64>,
    second_last: Option<u64>,
}

impl PairCorrelationTable {
    /// Creates a table with `num_rows` sets of `assoc` ways, each way
    /// holding `num_levels` levels of `num_succ` successors.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(num_rows: usize, assoc: usize, num_levels: usize, num_succ: usize) -> Self {
        assert!(num_rows > 0 && assoc > 0 && num_levels > 0 && num_succ > 0);
        PairCorrelationTable {
            sets: vec![Set::default(); num_rows],
            assoc,
            num_levels,
            num_succ,
            last: None,
            second_last: None,
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        (addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.sets.len()
    }

    /// Processes a miss on `addr`: records it as a successor of the last
    /// (level 1) and second-last (level 2, if configured) misses, shifts
    /// the pointers, and returns the prefetch candidates correlated with
    /// `addr` (all levels, MRU first within each level).
    pub fn on_miss(&mut self, addr: u64) -> Vec<u64> {
        if let Some(last) = self.last {
            self.record(last, addr, 0);
        }
        if self.num_levels >= 2 {
            if let Some(second) = self.second_last {
                self.record(second, addr, 1);
            }
        }
        self.second_last = self.last;
        self.last = Some(addr);

        self.candidates(addr)
    }

    /// Prefetch candidates for `addr` without updating any state.
    pub fn candidates(&self, addr: u64) -> Vec<u64> {
        let set = &self.sets[self.set_of(addr)];
        match set.entries.iter().find(|e| e.tag == addr) {
            Some(entry) => entry
                .levels
                .iter()
                .flatten()
                .copied()
                .filter(|&s| s != addr)
                .collect(),
            None => Vec::new(),
        }
    }

    fn record(&mut self, predecessor: u64, succ: u64, level: usize) {
        if predecessor == succ {
            return;
        }
        let assoc = self.assoc;
        let num_levels = self.num_levels;
        let num_succ = self.num_succ;
        let set_idx = self.set_of(predecessor);
        let set = &mut self.sets[set_idx];

        let mut entry = match set.entries.iter().position(|e| e.tag == predecessor) {
            Some(pos) => set.entries.remove(pos),
            None => Entry {
                tag: predecessor,
                levels: vec![Vec::new(); num_levels],
            },
        };
        let slot = &mut entry.levels[level];
        if let Some(pos) = slot.iter().position(|&s| s == succ) {
            slot.remove(pos);
        }
        slot.insert(0, succ);
        slot.truncate(num_succ);

        set.entries.insert(0, entry);
        set.entries.truncate(assoc);
    }

    /// Number of occupied entries across all sets.
    pub fn occupied(&self) -> usize {
        self.sets.iter().map(|s| s.entries.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_figure_5() {
        // Fig. 5: misses a, b, c, then a again.
        let (a, b, c) = (100u64, 200u64, 300u64);
        let mut t = PairCorrelationTable::new(64, 1, 2, 2);
        assert!(t.on_miss(a).is_empty());
        assert!(t.on_miss(b).is_empty());
        assert!(t.on_miss(c).is_empty());
        // Entry for a now holds b (level 1) and c (level 2);
        // missing a again prefetches both.
        let prefetch = t.on_miss(a);
        assert_eq!(prefetch, vec![b, c]);
    }

    #[test]
    fn single_level_records_immediate_successors_only() {
        let mut t = PairCorrelationTable::new(64, 1, 1, 2);
        t.on_miss(1);
        t.on_miss(2);
        t.on_miss(3);
        assert_eq!(t.candidates(1), vec![2]);
        assert_eq!(t.candidates(2), vec![3]);
    }

    #[test]
    fn successors_are_mru_bounded() {
        let mut t = PairCorrelationTable::new(64, 1, 1, 2);
        for succ in [10u64, 11, 12] {
            t.on_miss(1);
            t.on_miss(succ);
        }
        // Capacity 2, MRU first: 12 then 11.
        assert_eq!(t.candidates(1), vec![12, 11]);
    }

    #[test]
    fn set_conflict_evicts_lru_entry() {
        let mut t = PairCorrelationTable::new(1, 1, 1, 2);
        t.on_miss(1);
        t.on_miss(2); // entry for 1 created
        t.on_miss(3); // entry for 2 created, evicting 1
        assert!(t.candidates(1).is_empty());
        assert_eq!(t.candidates(2), vec![3]);
        assert_eq!(t.occupied(), 1);
    }

    #[test]
    fn repeated_miss_of_same_addr_is_harmless() {
        let mut t = PairCorrelationTable::new(64, 2, 2, 2);
        t.on_miss(5);
        let p = t.on_miss(5);
        assert!(p.is_empty());
        assert!(t.candidates(5).is_empty());
    }
}
