//! Prefetch-accuracy watchdog: graceful degradation for the correlation
//! prefetcher.
//!
//! Correlation prefetching is a bet that the recorded fault order
//! repeats. When it does not — a workload phase change, a correlation
//! table thrashed by injected entry drops — every wrong prefetch steals
//! PCIe bandwidth from demand migrations and evicts pages the GPU still
//! needs. The watchdog watches the bet's hit rate over a sliding window
//! of kernels and degrades in two steps:
//!
//! 1. **Throttle** — waste crossed [`PrefetchWatchdog`]'s throttle
//!    threshold: the driver halves its effective prefetch degree (the
//!    chain looks less far ahead, so a wrong chain does less damage);
//! 2. **Disable** — waste crossed the disable threshold: correlation
//!    prefetching stops entirely; after a cooldown of quiet kernels the
//!    watchdog re-enables it and the tables get another chance (they
//!    kept learning from demand faults the whole time).
//!
//! Thresholds are integer percentages of wasted-to-issued prefetched
//! pages, keeping the config `Eq`-comparable and the state machine free
//! of float drift.

use deepum_sim::faultinject::{DegradationState, WatchdogTransition};
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

fn state_tag(s: DegradationState) -> u8 {
    match s {
        DegradationState::Normal => 0,
        DegradationState::Throttled => 1,
        DegradationState::Disabled => 2,
    }
}

fn state_from_tag(tag: u8) -> Result<DegradationState, SnapshotError> {
    match tag {
        0 => Ok(DegradationState::Normal),
        1 => Ok(DegradationState::Throttled),
        2 => Ok(DegradationState::Disabled),
        other => Err(SnapshotError::Corrupt(format!(
            "unknown degradation state tag {other}"
        ))),
    }
}

/// Sliding-window misprediction watchdog over the prefetcher.
///
/// Fed once per kernel launch with the *delta* of prefetched and wasted
/// page counts; evaluates the waste percentage every `window_kernels`
/// launches.
///
/// # Example
///
/// ```
/// use deepum_core::watchdog::PrefetchWatchdog;
/// use deepum_sim::faultinject::DegradationState;
///
/// let mut wd = PrefetchWatchdog::new(2, 50, 90, 4);
/// wd.observe(1, 100, 95); // 95% waste
/// wd.observe(2, 100, 95);
/// assert_eq!(wd.state(), DegradationState::Disabled);
/// ```
#[derive(Debug, Clone)]
pub struct PrefetchWatchdog {
    window_kernels: u64,
    throttle_pct: u64,
    disable_pct: u64,
    cooldown_kernels: u64,

    state: DegradationState,
    kernels_in_window: u64,
    window_prefetched: u64,
    window_wasted: u64,
    cooldown_left: u64,
    transitions: Vec<WatchdogTransition>,
}

impl PrefetchWatchdog {
    /// Creates a watchdog evaluating every `window_kernels` launches,
    /// throttling at `throttle_pct`% waste, disabling at `disable_pct`%,
    /// and re-enabling `cooldown_kernels` launches after a disable.
    pub fn new(
        window_kernels: u64,
        throttle_pct: u64,
        disable_pct: u64,
        cooldown_kernels: u64,
    ) -> Self {
        PrefetchWatchdog {
            window_kernels: window_kernels.max(1),
            throttle_pct,
            disable_pct,
            cooldown_kernels: cooldown_kernels.max(1),
            state: DegradationState::Normal,
            kernels_in_window: 0,
            window_prefetched: 0,
            window_wasted: 0,
            cooldown_left: 0,
            transitions: Vec::new(),
        }
    }

    /// Current degradation state.
    pub fn state(&self) -> DegradationState {
        self.state
    }

    /// Every state change so far, in order.
    pub fn transitions(&self) -> &[WatchdogTransition] {
        &self.transitions
    }

    /// Feeds one kernel launch: `prefetched` and `wasted` are the page
    /// counts accumulated since the previous call (deltas, not totals).
    /// Returns the state in effect for the upcoming kernel.
    pub fn observe(&mut self, kernel_seq: u64, prefetched: u64, wasted: u64) -> DegradationState {
        if self.state == DegradationState::Disabled {
            // Quiet period: prefetching is off, nothing to measure. Count
            // down the cooldown and give the prefetcher a fresh window.
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.transition(kernel_seq, DegradationState::Normal);
                self.reset_window();
            }
            return self.state;
        }

        self.kernels_in_window += 1;
        self.window_prefetched += prefetched;
        self.window_wasted += wasted;
        if self.kernels_in_window < self.window_kernels {
            return self.state;
        }

        // A window with no prefetch traffic carries no signal; keep the
        // current state rather than "recovering" on silence.
        if self.window_prefetched > 0 {
            let pct = self
                .window_wasted
                .saturating_mul(100)
                .checked_div(self.window_prefetched)
                .unwrap_or(0);
            let next = if pct >= self.disable_pct {
                DegradationState::Disabled
            } else if pct >= self.throttle_pct {
                DegradationState::Throttled
            } else {
                DegradationState::Normal
            };
            if next != self.state {
                self.transition(kernel_seq, next);
                if next == DegradationState::Disabled {
                    self.cooldown_left = self.cooldown_kernels;
                }
            }
        }
        self.reset_window();
        self.state
    }

    /// Writes the full watchdog — thresholds, window accumulators, and
    /// transition history — into a checkpoint payload.
    pub(crate) fn encode_into(&self, w: &mut SnapshotWriter) {
        w.u64(self.window_kernels);
        w.u64(self.throttle_pct);
        w.u64(self.disable_pct);
        w.u64(self.cooldown_kernels);
        w.u8(state_tag(self.state));
        w.u64(self.kernels_in_window);
        w.u64(self.window_prefetched);
        w.u64(self.window_wasted);
        w.u64(self.cooldown_left);
        w.u64(deepum_mem::u64_from_usize(self.transitions.len()));
        for t in &self.transitions {
            w.u64(t.kernel_seq);
            w.u8(state_tag(t.from));
            w.u8(state_tag(t.to));
        }
    }

    /// Reads a watchdog written by [`PrefetchWatchdog::encode_into`].
    pub(crate) fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let window_kernels = r.u64()?;
        let throttle_pct = r.u64()?;
        let disable_pct = r.u64()?;
        let cooldown_kernels = r.u64()?;
        let state = state_from_tag(r.u8()?)?;
        let kernels_in_window = r.u64()?;
        let window_prefetched = r.u64()?;
        let window_wasted = r.u64()?;
        let cooldown_left = r.u64()?;
        let mut transitions = Vec::new();
        for _ in 0..r.len_prefix(10)? {
            transitions.push(WatchdogTransition {
                kernel_seq: r.u64()?,
                from: state_from_tag(r.u8()?)?,
                to: state_from_tag(r.u8()?)?,
            });
        }
        Ok(PrefetchWatchdog {
            window_kernels: window_kernels.max(1),
            throttle_pct,
            disable_pct,
            cooldown_kernels: cooldown_kernels.max(1),
            state,
            kernels_in_window,
            window_prefetched,
            window_wasted,
            cooldown_left,
            transitions,
        })
    }

    fn transition(&mut self, kernel_seq: u64, to: DegradationState) {
        self.transitions.push(WatchdogTransition {
            kernel_seq,
            from: self.state,
            to,
        });
        self.state = to;
    }

    fn reset_window(&mut self) {
        self.kernels_in_window = 0;
        self.window_prefetched = 0;
        self.window_wasted = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_windows_stay_normal() {
        let mut wd = PrefetchWatchdog::new(4, 50, 90, 8);
        for seq in 1..=16 {
            wd.observe(seq, 100, 5);
        }
        assert_eq!(wd.state(), DegradationState::Normal);
        assert!(wd.transitions().is_empty());
    }

    #[test]
    fn moderate_waste_throttles() {
        let mut wd = PrefetchWatchdog::new(4, 50, 90, 8);
        for seq in 1..=4 {
            wd.observe(seq, 100, 60);
        }
        assert_eq!(wd.state(), DegradationState::Throttled);
        assert_eq!(wd.transitions().len(), 1);
        assert_eq!(wd.transitions()[0].from, DegradationState::Normal);
    }

    #[test]
    fn throttled_recovers_when_waste_subsides() {
        let mut wd = PrefetchWatchdog::new(4, 50, 90, 8);
        for seq in 1..=4 {
            wd.observe(seq, 100, 60);
        }
        assert_eq!(wd.state(), DegradationState::Throttled);
        for seq in 5..=8 {
            wd.observe(seq, 100, 5);
        }
        assert_eq!(wd.state(), DegradationState::Normal);
        assert_eq!(wd.transitions().len(), 2);
    }

    #[test]
    fn sustained_storm_disables_then_cooldown_reenables() {
        let mut wd = PrefetchWatchdog::new(2, 50, 90, 3);
        let mut seq = 0;
        for _ in 0..2 {
            seq += 1;
            wd.observe(seq, 100, 95);
        }
        assert_eq!(wd.state(), DegradationState::Disabled);

        // Two quiet kernels: still disabled (cooldown is 3).
        for _ in 0..2 {
            seq += 1;
            assert_eq!(wd.observe(seq, 0, 0), DegradationState::Disabled);
        }
        // Third quiet kernel ends the cooldown.
        seq += 1;
        assert_eq!(wd.observe(seq, 0, 0), DegradationState::Normal);

        let t = wd.transitions();
        assert_eq!(t.len(), 2);
        assert_eq!(
            (t[0].from, t[0].to),
            (DegradationState::Normal, DegradationState::Disabled)
        );
        assert_eq!(
            (t[1].from, t[1].to),
            (DegradationState::Disabled, DegradationState::Normal)
        );
    }

    #[test]
    fn silent_window_carries_no_signal() {
        let mut wd = PrefetchWatchdog::new(2, 50, 90, 3);
        wd.observe(1, 100, 60);
        wd.observe(2, 100, 60);
        assert_eq!(wd.state(), DegradationState::Throttled);
        // No prefetch traffic at all: state holds rather than recovering.
        wd.observe(3, 0, 0);
        wd.observe(4, 0, 0);
        assert_eq!(wd.state(), DegradationState::Throttled);
    }
}
