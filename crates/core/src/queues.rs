//! The driver's single-producer/single-consumer queues.
//!
//! "The *fault queue* is a single-producer/single-consumer queue that
//! stores the UM block addresses of the faulted pages. [...] The
//! prefetching thread [...] enqueues the prefetch commands to the
//! *prefetch queue*, a single-producer/single-consumer queue. A prefetch
//! command consists of a UM block address to prefetch and the execution
//! ID for which the corresponding UM block is predicted to be used."
//! (Section 3.1.)
//!
//! The simulation is single-threaded-deterministic, so the queue is a
//! fixed-capacity ring buffer with the same semantics a lock-free SPSC
//! ring would have: bounded, FIFO, `try_push` fails when full.

use deepum_mem::BlockNum;
use deepum_runtime::exec_table::ExecId;
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use serde::{Deserialize, Serialize};

/// One prefetch command: which block to bring in, and for which predicted
/// kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefetchCommand {
    /// UM block to prefetch.
    pub block: BlockNum,
    /// Execution ID of the kernel predicted to use the block.
    pub exec: ExecId,
}

/// A bounded FIFO queue with SPSC ring-buffer semantics.
///
/// # Example
///
/// ```
/// use deepum_core::queues::SpscQueue;
///
/// let mut q: SpscQueue<u32> = SpscQueue::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert!(q.try_push(3).is_err()); // full
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct SpscQueue<T> {
    buf: Vec<Option<T>>,
    head: usize,
    tail: usize,
    len: usize,
    rejected: u64,
    total_pushed: u64,
}

impl<T> SpscQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let mut buf = Vec::with_capacity(capacity);
        buf.resize_with(capacity, || None);
        SpscQueue {
            buf,
            head: 0,
            tail: 0,
            len: 0,
            rejected: 0,
            total_pushed: 0,
        }
    }

    /// Appends `item`; fails (returning the item) when the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when at capacity; the rejection is counted.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.len == self.buf.len() {
            self.rejected += 1;
            return Err(item);
        }
        self.buf[self.tail] = Some(item);
        self.tail = (self.tail + 1) % self.buf.len();
        self.len += 1;
        self.total_pushed += 1;
        Ok(())
    }

    /// Removes and returns the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let item = self.buf[self.head].take();
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        item
    }

    /// Oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.buf[self.head].as_ref()
        }
    }

    /// Discards all queued items.
    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Maximum number of items.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Lifetime count of rejected pushes.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Lifetime count of accepted pushes.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Queued items oldest first, without consuming them.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        (0..self.len).filter_map(move |i| {
            let idx = (self.head + i) % self.buf.len();
            self.buf.get(idx).and_then(Option::as_ref)
        })
    }
}

impl SpscQueue<PrefetchCommand> {
    /// Writes the queue — capacity, lifetime counters, and queued
    /// commands oldest first — into a checkpoint payload.
    pub(crate) fn encode_into(&self, w: &mut SnapshotWriter) {
        w.u64(deepum_mem::u64_from_usize(self.buf.len()));
        w.u64(self.rejected);
        w.u64(self.total_pushed);
        w.u64(deepum_mem::u64_from_usize(self.len));
        for cmd in self.iter() {
            w.block(cmd.block);
            w.u32(cmd.exec.0);
        }
    }

    /// Reads a queue written by [`SpscQueue::encode_into`].
    pub(crate) fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let capacity = r.u64()?;
        let rejected = r.u64()?;
        let total_pushed = r.u64()?;
        let capacity = match usize::try_from(capacity) {
            Ok(c) if c > 0 => c,
            Ok(_) | Err(_) => {
                return Err(SnapshotError::Corrupt(format!(
                    "bad prefetch queue capacity {capacity}"
                )));
            }
        };
        let len = r.len_prefix(12)?;
        if len > capacity {
            return Err(SnapshotError::Corrupt(format!(
                "queue length {len} exceeds capacity {capacity}"
            )));
        }
        let mut q = SpscQueue::new(capacity);
        for _ in 0..len {
            let cmd = PrefetchCommand {
                block: r.block()?,
                exec: ExecId(r.u32()?),
            };
            if q.try_push(cmd).is_err() {
                return Err(SnapshotError::Corrupt(
                    "queue overflow while restoring".to_string(),
                ));
            }
        }
        // Lifetime counters are restored verbatim; the pushes above must
        // not count twice.
        q.rejected = rejected;
        q.total_pushed = total_pushed;
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = SpscQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(
            (0..4).map(|_| q.pop().unwrap()).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn wraps_around() {
        let mut q = SpscQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn full_rejects_and_counts() {
        let mut q = SpscQueue::new(1);
        q.try_push(7).unwrap();
        assert_eq!(q.try_push(8), Err(8));
        assert!(q.is_full());
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.total_pushed(), 1);
    }

    #[test]
    fn peek_and_clear() {
        let mut q = SpscQueue::new(3);
        q.try_push(5).unwrap();
        q.try_push(6).unwrap();
        assert_eq!(q.peek(), Some(&5));
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: SpscQueue<u8> = SpscQueue::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The ring buffer behaves exactly like a VecDeque under any
        /// push/pop interleaving.
        #[test]
        fn matches_vecdeque_model(ops in prop::collection::vec(prop::bool::ANY, 0..200)) {
            let mut q: SpscQueue<u32> = SpscQueue::new(8);
            let mut model = std::collections::VecDeque::new();
            let mut next = 0u32;
            for push in ops {
                if push {
                    let accepted = q.try_push(next).is_ok();
                    prop_assert_eq!(accepted, model.len() < 8);
                    if accepted {
                        model.push_back(next);
                    }
                    next += 1;
                } else {
                    prop_assert_eq!(q.pop(), model.pop_front());
                }
                prop_assert_eq!(q.len(), model.len());
                prop_assert_eq!(q.peek(), model.front());
            }
        }
    }
}
