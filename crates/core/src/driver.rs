//! The DeepUM driver.
//!
//! The paper's driver is a Linux kernel module with four kernel threads
//! (Section 3.1). In this deterministic simulation the four threads are
//! folded into one component, with each thread's work happening at the
//! same point of the protocol where it would run concurrently on real
//! hardware:
//!
//! * **fault handling thread** — [`DeepumDriver`]'s
//!   [`UmBackend::handle_faults`]: drains the fault buffer and forwards
//!   the batch to the NVIDIA-driver pipeline (highest priority);
//! * **correlator thread** — the table updates at the top of
//!   `handle_faults`: footprints, start/end pointers, block-pair records;
//! * **prefetching thread** — [`chain::ChainWalk`] pumping into the
//!   prefetch queue, (re)started at every fault batch, paused at the
//!   `N`-kernel look-ahead bound, resumed on kernel retirement;
//! * **migration thread** — [`UmBackend::overlap_compute`]: consumes the
//!   prefetch queue while the GPU computes, paying for migrations out of
//!   the overlap budget (the fault queue always preempts it, because
//!   demand faults are handled synchronously before compute resumes).

use std::collections::VecDeque;

use deepum_gpu::engine::{BackendError, PressureStats, UmBackend};
use deepum_gpu::fault::FaultEntry;
use deepum_gpu::kernel::KernelLaunch;
use deepum_mem::{BlockNum, ByteRange, DenseBlockSet, PageMask, PAGES_PER_BLOCK};
use deepum_runtime::exec_table::ExecId;
use deepum_runtime::interpose::LaunchObserver;
use deepum_sim::costs::CostModel;
use deepum_sim::faultinject::{BackendHealth, DegradationState, SharedInjector};
use deepum_sim::metrics::Counters;
use deepum_sim::time::Ns;
use deepum_trace::{InjectKind, PressureLevel, SharedTracer, TraceEvent, WatchdogMode};
use deepum_um::driver::UmDriver;
use deepum_um::evict::SharedBlockSet;
use deepum_um::hints::Advice;
use deepum_um::pressure::PressureConfig;
use deepum_um::scratch::group_faults_into;

use crate::chain::{ChainStep, ChainWalk};
use crate::config::DeepumConfig;
use crate::correlation::{BlockCorrelationTable, ExecCorrelationTable};
use crate::footprint::FootprintMap;
use crate::queues::{PrefetchCommand, SpscQueue};
use crate::watchdog::PrefetchWatchdog;

/// Sentinel for "no kernel yet" in execution history.
const NO_EXEC: ExecId = ExecId(u32::MAX);

/// Emits one trace event when a tracer is installed. Free function (not
/// a method) so emit sites inside loops that hold field borrows (the
/// chain walk in `pump_chain`) can still reach the tracer field.
fn emit(tracer: &Option<SharedTracer>, now: Ns, event: TraceEvent) {
    if let Some(tr) = tracer {
        tr.borrow_mut().emit(now.as_nanos(), event);
    }
}

/// Watchdog state as the dependency-free trace vocabulary.
fn watchdog_mode(state: DegradationState) -> WatchdogMode {
    match state {
        DegradationState::Normal => WatchdogMode::Normal,
        DegradationState::Throttled => WatchdogMode::Throttled,
        DegradationState::Disabled => WatchdogMode::Disabled,
    }
}

/// The DeepUM driver: correlation prefetching plus the two fault-handling
/// optimizations, layered over the simulated NVIDIA UM driver.
///
/// Implements [`UmBackend`] (the GPU side) and [`LaunchObserver`] (the
/// runtime side), so an executor wires it between a
/// [`deepum_gpu::engine::GpuEngine`] and a
/// [`deepum_runtime::interpose::CudaRuntime`].
#[derive(Debug)]
pub struct DeepumDriver {
    pub(crate) um: UmDriver,
    cfg: DeepumConfig,
    costs: CostModel,

    // Correlation state (correlator thread).
    pub(crate) exec_corr: ExecCorrelationTable,
    pub(crate) block_tables: Vec<Option<BlockCorrelationTable>>,
    pub(crate) footprints: FootprintMap,

    // Execution context.
    pub(crate) current_exec: Option<ExecId>,
    pub(crate) history: [ExecId; 3],
    pub(crate) first_fault_pending: bool,
    pub(crate) prev_fault_block: Option<BlockNum>,
    pub(crate) last_fault_block: Option<BlockNum>,
    pub(crate) pending_prediction: Option<ExecId>,

    // Prefetching thread state.
    pub(crate) chain: Option<ChainWalk>,
    pub(crate) prefetch_q: SpscQueue<PrefetchCommand>,
    /// Blocks currently sitting in the prefetch queue; chain restarts
    /// re-discover the same blocks, and duplicate commands would starve
    /// the far look-ahead out of the bounded queue.
    pub(crate) enqueued: DenseBlockSet,
    /// Reused per-drain fault-group buffer (block, pages); contents are
    /// meaningless between drains, only the capacity persists.
    pub(crate) fault_groups: Vec<(BlockNum, PageMask)>,
    pub(crate) protected: SharedBlockSet,
    pub(crate) predicted_window: VecDeque<(u64, BlockNum)>,
    pub(crate) kernel_seq: u64,

    // Migration thread state: overlap time owed from commands whose
    // transfers outlasted the compute slices that started them. PCIe is
    // full duplex, so host→device prefetch traffic and device→host
    // pre-eviction write-backs are budgeted independently.
    pub(crate) h2d_debt: Ns,
    pub(crate) d2h_debt: Ns,

    // Graceful degradation: the prefetch-accuracy watchdog throttles,
    // then disables, correlation prefetching when the misprediction rate
    // crosses its thresholds (re-enabling after a cooldown). The deltas
    // remember the counter values at the previous watchdog feeding.
    injector: Option<SharedInjector>,
    tracer: Option<SharedTracer>,
    /// Virtual time of the latest backend/observer entry point, so
    /// internal threads without a `now` parameter (`pump_chain`) can
    /// stamp their events.
    trace_now: Ns,
    pub(crate) watchdog: Option<PrefetchWatchdog>,
    pub(crate) wd_last_prefetched: u64,
    pub(crate) wd_last_wasted: u64,
    pub(crate) window_dropped: u64,

    // Memory-pressure response: under `Thrashing` the effective prefetch
    // look-ahead shrinks by right-shifting the configured degree; it
    // regrows one step per `Normal` kernel. This composes with the
    // watchdog ladder (which halves on *misprediction*): the watchdog
    // answers "are predictions wrong?", the governor answers "is the
    // device too small for this working set?" — both shrink the same
    // degree, for different reasons.
    pub(crate) pressure_shrink: u32,
    pub(crate) window_resizes: u64,

    // Serving degradation-ladder override: `DemandOnly` turns the
    // correlation prefetcher off entirely (reversibly — unlike an ECC
    // poisoning) while leaving learning and the watchdog untouched.
    pub(crate) demand_only: bool,

    // Hard-fault state: an uncorrectable ECC error on the correlation
    // tables poisons them permanently for the run. Neither field is
    // rewound by a checkpoint restore — a fault that already happened
    // stays happened.
    pub(crate) poisoned: bool,
    pub(crate) ecc_poisonings: u64,

    pub(crate) local: Counters,
}

impl DeepumDriver {
    /// Creates a DeepUM driver over a fresh UM driver for the platform
    /// described by `costs`.
    pub fn new(costs: CostModel, cfg: DeepumConfig) -> Self {
        let mut um = UmDriver::new(costs.clone());
        if cfg.enable_pressure_governor {
            um.install_pressure_governor(PressureConfig {
                refault_window: cfg.pressure_refault_window,
                cooldown_kernels: cfg.pressure_cooldown_kernels,
                ewma_shift: cfg.pressure_ewma_shift,
                elevated_pct: cfg.pressure_elevated_pct,
                thrashing_pct: cfg.pressure_thrashing_pct,
            });
        }
        let protected = um.protected_set();
        let prefetch_q = SpscQueue::new(cfg.prefetch_queue_capacity);
        let watchdog = if cfg.enable_watchdog {
            Some(PrefetchWatchdog::new(
                cfg.watchdog_window_kernels,
                cfg.watchdog_throttle_pct,
                cfg.watchdog_disable_pct,
                cfg.watchdog_cooldown_kernels,
            ))
        } else {
            None
        };
        DeepumDriver {
            um,
            cfg,
            costs,
            exec_corr: ExecCorrelationTable::new(),
            block_tables: Vec::new(),
            footprints: FootprintMap::new(),
            current_exec: None,
            history: [NO_EXEC; 3],
            first_fault_pending: false,
            prev_fault_block: None,
            last_fault_block: None,
            pending_prediction: None,
            chain: None,
            prefetch_q,
            enqueued: DenseBlockSet::new(),
            fault_groups: Vec::new(),
            protected,
            predicted_window: VecDeque::new(),
            kernel_seq: 0,
            h2d_debt: Ns::ZERO,
            d2h_debt: Ns::ZERO,
            injector: None,
            tracer: None,
            trace_now: Ns::ZERO,
            watchdog,
            wd_last_prefetched: 0,
            wd_last_wasted: 0,
            window_dropped: 0,
            pressure_shrink: 0,
            window_resizes: 0,
            demand_only: false,
            poisoned: false,
            ecc_poisonings: 0,
            local: Counters::new(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DeepumConfig {
        &self.cfg
    }

    /// The underlying (simulated NVIDIA) UM driver.
    pub fn um(&self) -> &UmDriver {
        &self.um
    }

    /// Swaps the underlying UM driver with `other`. The multi-tenant
    /// scheduler time-shares one device by swapping the shared UM
    /// driver into a tenant's DeepUM driver for the tenant's kernel
    /// slot and back out at the slot end; correlation state, prefetch
    /// queues, and the watchdog stay with the tenant.
    pub fn swap_um(&mut self, other: &mut UmDriver) {
        std::mem::swap(&mut self.um, other);
    }

    /// The driver's eviction-protected (predicted-window) block set.
    /// Clones share state: the multi-tenant scheduler registers this
    /// set as the tenant's ledger set, so predictions made here steer
    /// victim selection in the shared driver during the tenant's slot.
    pub fn protected_set(&self) -> SharedBlockSet {
        self.protected.clone()
    }

    /// Removes and returns the pressure governor installed on the
    /// (current) underlying UM driver. The multi-tenant scheduler parks
    /// each tenant's governor in its ledger at registration; the shared
    /// driver swaps it in for the tenant's slots.
    pub fn take_pressure_governor(&mut self) -> Option<deepum_um::pressure::PressureGovernor> {
        self.um.take_pressure_governor()
    }

    /// DeepUM-side counters only — what [`DeepumDriver::counters`] adds
    /// on top of the UM driver. Multi-tenant reports combine this with
    /// the tenant's ledger counters, because the UM driver underneath a
    /// tenant changes across slots.
    pub fn local_counters(&self) -> Counters {
        let mut c = self.local;
        c.prefetch_commands = self.prefetch_q.total_pushed();
        c
    }

    /// Multi-tenant load shedding: a system-wide pressure broadcast
    /// asks the tenant to shrink its prefetch look-ahead one step — the
    /// same ladder its local governor drives — regardless of what its
    /// own governor currently believes. No-op once fully shrunk.
    pub fn shed_load(&mut self) {
        if self.pressure_shrink < Self::MAX_PRESSURE_SHRINK {
            self.pressure_shrink += 1;
            self.window_resizes += 1;
        }
    }

    /// Inverse of [`DeepumDriver::shed_load`]: regrows the prefetch
    /// look-ahead one step. The serving degradation ladder calls this
    /// when de-escalating from `ReducedWindow` after its hysteresis
    /// window of clean cycles. No-op at full width.
    pub fn relax_load(&mut self) {
        if self.pressure_shrink > 0 {
            self.pressure_shrink -= 1;
            self.window_resizes += 1;
        }
    }

    /// Serving degradation ladder, `DemandOnly` rung: reversibly turns
    /// correlation prefetching off (pure demand paging) without
    /// touching learned state, the watchdog, or the governor.
    pub fn set_demand_only(&mut self, on: bool) {
        self.demand_only = on;
    }

    /// Merged event counters: UM driver + DeepUM-specific.
    pub fn counters(&self) -> Counters {
        let mut c = self.um.counters();
        c.merge(&self.local);
        c.prefetch_commands = self.prefetch_q.total_pushed();
        c
    }

    /// Total memory consumed by the correlation structures (Table 4):
    /// the execution table, every per-execution-ID block table, and the
    /// learned footprints.
    pub fn table_memory_bytes(&self) -> usize {
        let blocks: usize = self
            .block_tables
            .iter()
            .flatten()
            .map(BlockCorrelationTable::memory_bytes)
            .sum();
        self.exec_corr.memory_bytes() + blocks + self.footprints.memory_bytes()
    }

    /// Number of distinct execution IDs with an allocated block table.
    pub fn block_table_count(&self) -> usize {
        self.block_tables.iter().flatten().count()
    }

    /// The execution-ID correlation table (diagnostics).
    pub fn exec_correlation(&self) -> &ExecCorrelationTable {
        &self.exec_corr
    }

    /// The block correlation table of `exec`, if allocated (diagnostics).
    pub fn block_table(&self, exec: ExecId) -> Option<&BlockCorrelationTable> {
        self.block_tables.get(exec.index()).and_then(Option::as_ref)
    }

    fn ensure_block_table(&mut self, exec: ExecId) -> &mut BlockCorrelationTable {
        let idx = exec.index();
        if idx >= self.block_tables.len() {
            self.block_tables.resize_with(idx + 1, || None);
        }
        // "DeepUM dynamically allocates a UM block correlation table
        // when it finds a kernel with a new execution ID."
        self.block_tables[idx].get_or_insert_with(|| {
            BlockCorrelationTable::new(
                self.cfg.block_table_rows,
                self.cfg.block_table_assoc,
                self.cfg.block_table_succs,
            )
        })
    }

    /// Steps the prefetching thread runs per pump before yielding. The
    /// chain state persists across pumps (it is called again at every
    /// fault, kernel boundary, and queue drain), so the cap bounds the
    /// CPU burst without reducing coverage — it is what keeps chaining
    /// cheap on fault-storm workloads like DLRM.
    const PUMP_STEP_BUDGET: usize = 512;

    /// Upper bound on the pressure shrink shift: the look-ahead never
    /// drops below `prefetch_degree / 8` (and never below 1 kernel), so
    /// prefetching keeps probing even under sustained thrash and the
    /// governor can observe recovery.
    const MAX_PRESSURE_SHRINK: u32 = 3;

    /// The look-ahead degree in effect for the next chain pump: the
    /// configured `N`, halved by a throttled watchdog, then
    /// right-shifted by the pressure governor's shrink level. Always at
    /// least one kernel. Public so the serving ladder can report the
    /// window it composed with.
    pub fn effective_degree(&self) -> usize {
        let degree = match self.watchdog.as_ref().map(PrefetchWatchdog::state) {
            Some(DegradationState::Throttled) => (self.cfg.prefetch_degree / 2).max(1),
            _ => self.cfg.prefetch_degree,
        };
        (degree >> self.pressure_shrink).max(1)
    }

    /// Whether correlation prefetching is currently allowed to run: the
    /// config switch, minus a watchdog disable, an ECC poisoning, or
    /// the serving ladder's `DemandOnly` override.
    fn prefetch_active(&self) -> bool {
        self.cfg.enable_prefetch
            && !self.poisoned
            && !self.demand_only
            && self
                .watchdog
                .as_ref()
                .is_none_or(|w| w.state() != DegradationState::Disabled)
    }

    /// True once an uncorrectable ECC error has poisoned the correlation
    /// tables; the driver then runs in pure demand-paging mode.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of ECC poisonings observed (0 or 1 per run today; counted
    /// for the recovery report).
    pub fn ecc_poisonings(&self) -> u64 {
        self.ecc_poisonings
    }

    /// Uncorrectable ECC on correlation-table memory: throw away every
    /// learned structure and fall back to pure demand paging. Counters
    /// and the UM driver survive — only the prediction state is lost.
    fn poison_tables(&mut self) {
        self.poisoned = true;
        self.ecc_poisonings += 1;
        self.exec_corr = ExecCorrelationTable::new();
        self.block_tables.clear();
        self.chain = None;
        self.prefetch_q.clear();
        self.enqueued.clear();
        self.predicted_window.clear();
        self.protected.clear();
        self.pending_prediction = None;
    }

    /// Runs the prefetching thread: advance the chain walk and enqueue
    /// commands until the queue fills, the look-ahead window closes, the
    /// chain ends, or the step budget is spent.
    fn pump_chain(&mut self) {
        if !self.prefetch_active() {
            return;
        }
        // A throttled watchdog halves the look-ahead (a wrong chain does
        // half the damage while the tables relearn); memory pressure
        // shrinks it further still.
        let degree = self.effective_degree();
        let Some(chain) = self.chain.as_mut() else {
            return;
        };
        let mut steps = 0;
        while !self.prefetch_q.is_full() && steps < Self::PUMP_STEP_BUDGET {
            steps += 1;
            match chain.step(&self.block_tables, &self.exec_corr, degree) {
                ChainStep::Emit(cmd) => {
                    self.local.block_table_lookups += 1;
                    emit(
                        &self.tracer,
                        self.trace_now,
                        TraceEvent::ChainFollow {
                            block: cmd.block.index(),
                            depth: chain.kernels_ahead() as u64,
                        },
                    );
                    // Every predicted block is protected from (pre-)
                    // eviction for the look-ahead window, but only
                    // blocks that are neither queued already nor fully
                    // resident spend a queue slot. The window itself is
                    // bounded: past capacity the oldest entry yields
                    // (backpressure, reported via `health`).
                    let expires = self.kernel_seq + chain.kernels_ahead() as u64;
                    if self.predicted_window.len() >= self.cfg.predicted_window_capacity {
                        self.predicted_window.pop_front();
                        self.window_dropped += 1;
                    }
                    self.predicted_window.push_back((expires, cmd.block));
                    self.protected.insert(cmd.block);
                    if self.enqueued.contains(cmd.block) {
                        continue;
                    }
                    let footprint = self.footprints.get(cmd.block);
                    if !footprint.is_empty()
                        && self.um.resident_miss(cmd.block, &footprint).is_empty()
                    {
                        continue;
                    }
                    if self.prefetch_q.try_push(cmd).is_ok() {
                        self.enqueued.insert(cmd.block);
                        emit(
                            &self.tracer,
                            self.trace_now,
                            TraceEvent::PrefetchEnqueue {
                                block: cmd.block.index(),
                                pages: footprint.count() as u64,
                            },
                        );
                    }
                }
                ChainStep::Transition { predicted, ahead } => {
                    if ahead == 1 {
                        self.pending_prediction = Some(predicted);
                    }
                }
                ChainStep::Paused | ChainStep::Ended => break,
            }
        }
    }

    /// Processes one prefetch command; returns `(h2d_cost, d2h_cost)`:
    /// the host→device migration DMA time and the device→host
    /// pre-eviction write-back DMA time, which ride independent (full
    /// duplex) directions. The migration thread's CPU work — table
    /// lookups, unmap bookkeeping, queueing — runs concurrently with the
    /// DMA engines and, as the paper notes, "does not incur significant
    /// [...] performance overhead"; it is not charged to either channel.
    fn process_prefetch(&mut self, now: Ns, cmd: PrefetchCommand) -> (Ns, Ns) {
        self.enqueued.remove(cmd.block);
        let mask = self.footprints.get(cmd.block);
        if mask.is_empty() {
            return (self.costs.prefetch_cmd_cost, Ns::ZERO);
        }
        let missing = self.um.resident_miss(cmd.block, &mask);
        if missing.is_empty() {
            return (self.costs.prefetch_cmd_cost, Ns::ZERO);
        }
        let needed = missing.count() as u64;
        let mut h2d = Ns::ZERO;
        let mut d2h = Ns::ZERO;
        if self.cfg.enable_preevict {
            // Section 5.1: keep headroom free so demand faults never pay
            // for eviction on the critical path. The protected set (blocks
            // predicted for the current + next N kernels) steers victim
            // selection; pre-eviction never touches protected blocks.
            let headroom = (self.cfg.preevict_headroom_blocks * PAGES_PER_BLOCK as u64)
                .min(self.um.capacity_pages() / 4);
            let evict = self.um.preevict(now, needed + headroom);
            d2h += evict.writeback;
            // Only host-valid pages move over PCIe; the unpopulated rest
            // of the block is populated device-side for free.
            let transferable = self.um.host_valid(cmd.block, &missing).count() as u64;
            self.um.prefetch_into_gpu(now, cmd.block, &mask);
            h2d += self
                .costs
                .transfer_time(transferable * deepum_mem::PAGE_SIZE as u64);
        } else if self.um.effective_free_pages() >= needed {
            let transferable = self.um.host_valid(cmd.block, &missing).count() as u64;
            self.um.prefetch_into_gpu(now, cmd.block, &mask);
            h2d += self
                .costs
                .transfer_time(transferable * deepum_mem::PAGE_SIZE as u64);
        } else {
            // Without pre-eviction the prefetch path does not evict; the
            // block will fault on demand instead (and that fault pays for
            // eviction on the critical path).
            self.local.prefetch_dropped += 1;
            emit(
                &self.tracer,
                now,
                TraceEvent::PrefetchDrop {
                    block: cmd.block.index(),
                },
            );
        }
        (h2d.max(self.costs.prefetch_cmd_cost), d2h)
    }

    fn prune_predicted_window(&mut self) {
        while let Some(&(expires, _)) = self.predicted_window.front() {
            if expires < self.kernel_seq {
                self.predicted_window.pop_front();
            } else {
                break;
            }
        }
        // Protecting more blocks than the device can hold would pin the
        // whole memory and leave pre-eviction with no victims; protect
        // only the nearest-future predictions up to half of capacity.
        let max_protected = (self.um.capacity_pages() / PAGES_PER_BLOCK as u64 / 2).max(1) as usize;
        self.protected.replace(
            self.predicted_window
                .iter()
                .take(max_protected)
                .map(|&(_, b)| b),
        );
    }

    /// Graceful-degradation report: watchdog state and transition
    /// history plus predicted-window backpressure drops.
    pub fn health(&self) -> BackendHealth {
        BackendHealth {
            watchdog_state: if self.poisoned {
                DegradationState::Disabled
            } else {
                self.watchdog
                    .as_ref()
                    .map_or(DegradationState::Normal, PrefetchWatchdog::state)
            },
            watchdog_transitions: self
                .watchdog
                .as_ref()
                .map_or_else(Vec::new, |w| w.transitions().to_vec()),
            predicted_window_dropped: self.window_dropped,
        }
    }
}

impl LaunchObserver for DeepumDriver {
    fn on_kernel_launch(&mut self, now: Ns, exec: ExecId, _kernel: &KernelLaunch) {
        self.trace_now = now;
        self.local.kernels_launched += 1;

        // Poisoned tables stay dead: track the launch position (other
        // subsystems key off `kernel_seq`) but learn and predict nothing.
        if self.poisoned {
            self.current_exec = Some(exec);
            self.first_fault_pending = true;
            self.prev_fault_block = None;
            self.last_fault_block = None;
            self.kernel_seq += 1;
            return;
        }

        if let Some(cur) = self.current_exec {
            // Correlator thread: record (history, next) under the kernel
            // that just finished, and close out its block table.
            self.exec_corr.record(cur, self.history, exec);
            if let Some(end) = self.last_fault_block {
                self.ensure_block_table(cur).set_end(end);
            }
            // Prediction-accuracy accounting for the chain's first hop.
            if let Some(predicted) = self.pending_prediction.take() {
                self.local.exec_predictions += 1;
                if predicted != exec {
                    self.local.exec_mispredictions += 1;
                }
                emit(
                    &self.tracer,
                    now,
                    TraceEvent::CorrelationPredict {
                        hit: predicted == exec,
                    },
                );
            }
            self.history = [self.history[1], self.history[2], cur];
        }

        self.current_exec = Some(exec);
        self.ensure_block_table(exec);
        self.first_fault_pending = true;
        self.prev_fault_block = None;
        self.last_fault_block = None;
        self.kernel_seq += 1;

        // Feed the watchdog the per-kernel prefetch accuracy deltas; on
        // a fresh disable, flush every in-flight prediction so the queue
        // stops competing with demand traffic immediately.
        if let Some(wd) = self.watchdog.as_mut() {
            // `active_counters` so a multi-tenant slot feeds the watchdog
            // this tenant's own deltas; solo it is the plain counters.
            let c = self.um.active_counters();
            let prefetched = c.pages_prefetched - self.wd_last_prefetched;
            let wasted = c.prefetch_wasted - self.wd_last_wasted;
            self.wd_last_prefetched = c.pages_prefetched;
            self.wd_last_wasted = c.prefetch_wasted;
            let before = wd.state();
            let after = wd.observe(self.kernel_seq, prefetched, wasted);
            if before != after {
                emit(
                    &self.tracer,
                    now,
                    TraceEvent::WatchdogTransition {
                        from: watchdog_mode(before),
                        to: watchdog_mode(after),
                    },
                );
            }
            if after == DegradationState::Disabled && before != after {
                while self.prefetch_q.pop().is_some() {}
                self.enqueued.clear();
                self.chain = None;
            }
        }

        // Memory-pressure response: shrink the predicted look-ahead one
        // shift per kernel launched under `Thrashing`, regrow one shift
        // per kernel under `Normal`, hold under `Elevated` (the
        // classification hysteresis lives in the governor; this ladder
        // only follows it).
        if self.cfg.enable_pressure_governor {
            let level = self.um.pressure_level();
            let old = self.pressure_shrink;
            let new = match level {
                PressureLevel::Thrashing => (old + 1).min(Self::MAX_PRESSURE_SHRINK),
                PressureLevel::Elevated => old,
                PressureLevel::Normal => old.saturating_sub(1),
            };
            if new != old {
                let base = self.cfg.prefetch_degree;
                self.pressure_shrink = new;
                self.window_resizes += 1;
                emit(
                    &self.tracer,
                    now,
                    TraceEvent::PredictedWindowResized {
                        from_degree: (base >> old).max(1) as u64,
                        to_degree: (base >> new).max(1) as u64,
                        level,
                    },
                );
            }
        }

        // The look-ahead window slides by one kernel.
        if let Some(chain) = self.chain.as_mut() {
            chain.on_kernel_advanced();
        }
        self.prune_predicted_window();
        self.pump_chain();
    }

    fn on_pt_block_state(&mut self, _now: Ns, range: ByteRange, inactive: bool) {
        if self.cfg.enable_invalidate {
            self.um.mark_invalidatable(range, inactive);
        }
    }

    fn on_um_range_released(&mut self, _now: Ns, range: ByteRange) {
        self.um.release_range(range);
        for (block, mask) in range.block_footprints() {
            if mask.is_full() {
                self.footprints.forget(block);
            }
        }
    }

    fn on_mem_advise(&mut self, now: Ns, range: ByteRange, advice: Advice) {
        self.um.advise(now, range, advice);
    }
}

impl UmBackend for DeepumDriver {
    fn resident_miss(&self, block: BlockNum, pages: &PageMask) -> PageMask {
        self.um.resident_miss(block, pages)
    }

    fn handle_faults(&mut self, now: Ns, faults: &[FaultEntry]) -> Result<Ns, BackendError> {
        self.trace_now = now;
        let mut groups = std::mem::take(&mut self.fault_groups);
        group_faults_into(faults, &mut groups);

        // Injected uncorrectable ECC: the sampled victim is one of this
        // drain's faulted blocks, whose table row is being written right
        // now. Correlation state is advisory, so the driver does not
        // crash — it poisons the tables and degrades to demand paging.
        if !groups.is_empty() && !self.poisoned {
            let ecc_hit = match &self.injector {
                Some(inj) => inj.borrow_mut().roll_ecc(groups.len()),
                None => None,
            };
            if let Some(idx) = ecc_hit {
                emit(
                    &self.tracer,
                    now,
                    TraceEvent::InjectedFault {
                        kind: InjectKind::EccError,
                    },
                );
                if let Some(&(block, _)) = groups.get(idx) {
                    emit(
                        &self.tracer,
                        now,
                        TraceEvent::TablesPoisoned {
                            block: block.index(),
                        },
                    );
                }
                self.poison_tables();
            }
        }

        // Correlator thread: learn footprints, start/end anchors, and
        // block-successor pairs from the fault stream. Poisoned tables
        // stay dead — learning into them would fake integrity.
        if self.poisoned {
            groups.clear();
            self.fault_groups = groups;
            return self.um.handle_faults(now, faults);
        }
        if let Some(cur) = self.current_exec {
            self.ensure_block_table(cur);
            // First pass: footprints and injected pair-drop rolls. The
            // table borrow below locks `self`, so every decision that
            // needs other fields is made up front.
            let mut pairs: Vec<(BlockNum, Option<BlockNum>)> = Vec::with_capacity(groups.len());
            for (block, mask) in &groups {
                self.footprints.record(*block, mask);
                let recorded = match self.prev_fault_block {
                    Some(prev) if prev != *block => {
                        // Injected correlation-table entry drop: the pair
                        // record is lost before it reaches the table, so
                        // the prefetcher must live with holes in the
                        // learned chain.
                        let dropped = match &self.injector {
                            Some(inj) => inj.borrow_mut().roll_corr_drop(),
                            None => false,
                        };
                        if dropped {
                            None
                        } else {
                            Some(prev)
                        }
                    }
                    _ => None,
                };
                pairs.push((*block, recorded));
                self.prev_fault_block = Some(*block);
                self.last_fault_block = Some(*block);
            }
            let set_start = match pairs.first() {
                Some(&(first, _)) if self.first_fault_pending => {
                    self.first_fault_pending = false;
                    Some(first)
                }
                _ => None,
            };
            let mut recorded_pairs = 0u64;
            let table = self.ensure_block_table(cur);
            if let Some(start) = set_start {
                table.set_start(start);
            }
            for &(block, prev) in &pairs {
                if let Some(prev) = prev {
                    table.record_pair(prev, block);
                    recorded_pairs += 1;
                }
            }
            self.local.block_table_updates += recorded_pairs;

            // Prefetching thread: chaining restarts at every new fault.
            if self.prefetch_active() {
                if let Some(&(block, _)) = groups.last() {
                    self.chain = Some(ChainWalk::new(cur, self.history, block));
                    self.local.chain_walks += 1;
                    self.pump_chain();
                }
            }
        }

        // Fault handling thread: the fault queue has the highest
        // priority; hand the batch to the NVIDIA pipeline synchronously.
        groups.clear();
        self.fault_groups = groups;
        self.um.handle_faults(now, faults)
    }

    fn touch(&mut self, now: Ns, block: BlockNum, pages: &PageMask) {
        self.footprints.record(block, pages);
        self.um.touch(now, block, pages);
    }

    fn overlap_compute(&mut self, now: Ns, dur: Ns) -> Ns {
        self.trace_now = now;
        // Migration thread: consume prefetch commands while the GPU
        // computes. Each DMA direction has `dur` of budget (full
        // duplex); debts carry transfers that outlasted earlier slices.
        let mut h2d_left = dur;
        let mut d2h_left = dur;

        let pay = self.h2d_debt.min(h2d_left);
        self.h2d_debt -= pay;
        h2d_left -= pay;
        let pay = self.d2h_debt.min(d2h_left);
        self.d2h_debt -= pay;
        d2h_left -= pay;

        while h2d_left > Ns::ZERO {
            if self.prefetch_q.is_empty() {
                self.pump_chain();
            }
            let Some(cmd) = self.prefetch_q.pop() else {
                break;
            };
            let (h2d, d2h) = self.process_prefetch(now, cmd);
            if h2d <= h2d_left {
                h2d_left -= h2d;
            } else {
                self.h2d_debt = h2d - h2d_left;
                h2d_left = Ns::ZERO;
            }
            if d2h <= d2h_left {
                d2h_left -= d2h;
            } else {
                self.d2h_debt += d2h - d2h_left;
                d2h_left = Ns::ZERO;
            }
        }
        // Busy time for energy accounting: the slice carried PCIe
        // traffic for as long as either direction was active.
        (dur - h2d_left).max(dur - d2h_left)
    }

    fn kernel_finished(&mut self, now: Ns) {
        self.trace_now = now;
        // Close the governor's per-kernel refault window (and release
        // the minimum-resident pins) before the prefetcher runs.
        self.um.pressure_kernel_tick(now);
        // "The prefetching thread resumes after the currently executing
        // kernel finishes."
        self.pump_chain();
    }

    fn install_injector(&mut self, injector: SharedInjector) {
        self.um.install_injector(injector.clone());
        self.injector = Some(injector);
    }

    fn install_tracer(&mut self, tracer: SharedTracer) {
        self.um.set_tracer(tracer.clone());
        self.tracer = Some(tracer);
    }

    fn validate(&self) -> Result<(), String> {
        self.um.validate()
    }

    fn health(&self) -> BackendHealth {
        DeepumDriver::health(self)
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(crate::recovery::snapshot_deepum(self))
    }

    fn restore_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        crate::recovery::restore_deepum(self, bytes).map_err(|e| e.to_string())
    }

    fn resident_pages(&self) -> u64 {
        self.um.resident_pages()
    }

    fn pressure(&self) -> Option<PressureStats> {
        // The governor lives in the UM driver; the look-ahead resize
        // count is DeepUM's contribution to the same story.
        self.um.pressure_stats().map(|mut s| {
            s.window_resizes = self.window_resizes;
            s
        })
    }

    fn wear(&self) -> Option<deepum_gpu::engine::WearStats> {
        UmBackend::wear(&self.um)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_gpu::fault::{AccessKind, SmId};
    use deepum_mem::{UmAddr, BLOCK_SIZE};

    fn driver(capacity_blocks: u64, cfg: DeepumConfig) -> DeepumDriver {
        let costs = CostModel::v100_32gb().with_device_memory(capacity_blocks * BLOCK_SIZE as u64);
        DeepumDriver::new(costs, cfg)
    }

    fn kernel(name: &str) -> KernelLaunch {
        KernelLaunch::new(name, &[], vec![], Ns::from_micros(10))
    }

    fn faults(block: u64, pages: core::ops::Range<usize>) -> Vec<FaultEntry> {
        pages
            .map(|i| FaultEntry {
                page: BlockNum::new(block).page(i),
                kind: AccessKind::Read,
                sm: SmId(0),
            })
            .collect()
    }

    /// Simulates `iters` repetitions of a two-kernel loop where kernel A
    /// faults blocks 0→1 and kernel B faults blocks 2→3, and returns the
    /// driver.
    fn train_loop(d: &mut DeepumDriver, iters: usize) {
        let (ka, kb) = (kernel("A"), kernel("B"));
        let mut now = Ns::ZERO;
        for _ in 0..iters {
            d.on_kernel_launch(now, ExecId(0), &ka);
            for b in [0u64, 1] {
                let miss = d.resident_miss(BlockNum::new(b), &PageMask::first_n(64));
                if !miss.is_empty() {
                    let entries = faults(b, 0..64);
                    d.handle_faults(now, &entries).expect("faults handled");
                }
                d.touch(now, BlockNum::new(b), &PageMask::first_n(64));
            }
            d.overlap_compute(now, Ns::from_millis(10));
            d.kernel_finished(now);

            d.on_kernel_launch(now, ExecId(1), &kb);
            for b in [2u64, 3] {
                let miss = d.resident_miss(BlockNum::new(b), &PageMask::first_n(64));
                if !miss.is_empty() {
                    let entries = faults(b, 0..64);
                    d.handle_faults(now, &entries).expect("faults handled");
                }
                d.touch(now, BlockNum::new(b), &PageMask::first_n(64));
            }
            d.overlap_compute(now, Ns::from_millis(10));
            d.kernel_finished(now);
            now += Ns::from_millis(25);
        }
    }

    #[test]
    fn correlation_tables_learn_the_loop() {
        let mut d = driver(16, DeepumConfig::default());
        train_loop(&mut d, 3);
        // Block table of exec 0 learned 0 -> 1.
        let t0 = d.block_table(ExecId(0)).unwrap();
        assert_eq!(t0.successors(BlockNum::new(0)), &[BlockNum::new(1)]);
        assert_eq!(t0.start(), Some(BlockNum::new(0)));
        assert_eq!(t0.end(), Some(BlockNum::new(1)));
        // Exec table predicts B after A once context is warm.
        assert_eq!(d.block_table_count(), 2);
        assert!(d.exec_correlation().total_records() >= 2);
    }

    #[test]
    fn prefetching_eliminates_steady_state_faults() {
        let mut d = driver(16, DeepumConfig::default());
        train_loop(&mut d, 2);
        let warmed = d.counters();
        train_loop(&mut d, 3);
        let steady = d.counters().delta_since(&warmed);
        // Device holds everything: after warm-up no faults at all (the
        // working set stays resident).
        assert_eq!(steady.gpu_page_faults, 0);
    }

    #[test]
    fn oversubscribed_steady_state_prefetches_instead_of_faulting() {
        // Device: 4 blocks; working set: 8 full blocks over a 4-kernel
        // loop (K0 uses 0-1, K1 uses 2-3, ...), so every kernel's data
        // has been evicted by the time it runs again — the oversubscribed
        // regime the paper targets. With a look-ahead of one kernel, the
        // chain keeps rolling across the loop and hides the migrations.
        let cfg = DeepumConfig::default().with_prefetch_degree(1);
        let mut d = driver(4, cfg);
        let kernels: Vec<KernelLaunch> = (0..4).map(|i| kernel(&format!("K{i}"))).collect();
        let mut now = Ns::ZERO;
        let full = PageMask::full();
        let mut faults_at_iter = Vec::new();
        for _ in 0..8 {
            let start_faults = d.counters().gpu_page_faults;
            for (ki, k) in kernels.iter().enumerate() {
                d.on_kernel_launch(now, ExecId(ki as u32), k);
                for b in [2 * ki as u64, 2 * ki as u64 + 1] {
                    let miss = d.resident_miss(BlockNum::new(b), &full);
                    if !miss.is_empty() {
                        let entries: Vec<FaultEntry> = miss
                            .iter_ones()
                            .map(|i| FaultEntry {
                                page: BlockNum::new(b).page(i),
                                kind: AccessKind::Read,
                                sm: SmId(0),
                            })
                            .collect();
                        d.handle_faults(now, &entries).expect("faults handled");
                    }
                    d.touch(now, BlockNum::new(b), &full);
                    // Compute slice during which migrations overlap.
                    d.overlap_compute(now, Ns::from_millis(50));
                }
                d.kernel_finished(now);
                now += Ns::from_millis(10);
            }
            faults_at_iter.push(d.counters().gpu_page_faults - start_faults);
        }
        let c = d.counters();
        assert!(c.pages_prefetched > 0, "prefetched: {}", c.pages_prefetched);
        assert!(c.prefetch_hits > 0, "hits: {}", c.prefetch_hits);
        // Steady state faults far below the cold-iteration count.
        let cold = faults_at_iter[0];
        let steady = *faults_at_iter.last().unwrap();
        assert!(
            steady < cold / 2,
            "cold {cold}, steady {steady}, all {faults_at_iter:?}"
        );
    }

    #[test]
    fn invalidation_respects_toggle() {
        let mut on = driver(4, DeepumConfig::default());
        let mut off = driver(
            4,
            DeepumConfig {
                enable_invalidate: false,
                ..DeepumConfig::default()
            },
        );
        let range = ByteRange::new(UmAddr::new(0), BLOCK_SIZE as u64);
        on.on_pt_block_state(Ns::ZERO, range, true);
        off.on_pt_block_state(Ns::ZERO, range, true);

        for d in [&mut on, &mut off] {
            let entries = faults(0, 0..512);
            d.handle_faults(Ns::ZERO, &entries).expect("faults handled");
            // Force eviction of block 0 by filling the rest of memory.
            for b in 1..=4u64 {
                let entries = faults(b, 0..512);
                d.handle_faults(Ns::from_nanos(b), &entries)
                    .expect("faults handled");
            }
        }
        assert!(on.counters().pages_invalidated >= 512);
        assert_eq!(off.counters().pages_invalidated, 0);
    }

    #[test]
    fn prefetch_disabled_never_prefetches() {
        let cfg = DeepumConfig {
            enable_prefetch: false,
            ..DeepumConfig::default()
        };
        let mut d = driver(16, cfg);
        train_loop(&mut d, 4);
        let c = d.counters();
        assert_eq!(c.pages_prefetched, 0);
        assert_eq!(c.prefetch_commands, 0);
        // Faults persist every iteration only if evictions occur; with
        // ample memory they still go to zero after warm-up, but no
        // prefetch machinery ran.
        assert_eq!(c.chain_walks, 0);
    }

    #[test]
    fn exec_prediction_accuracy_is_tracked() {
        let mut d = driver(16, DeepumConfig::default());
        train_loop(&mut d, 5);
        let c = d.counters();
        if c.exec_predictions > 0 {
            assert!(c.exec_mispredictions <= c.exec_predictions);
        }
    }

    #[test]
    fn table_memory_grows_with_new_exec_ids() {
        let mut d = driver(16, DeepumConfig::default());
        let before = d.table_memory_bytes();
        train_loop(&mut d, 1);
        assert!(d.table_memory_bytes() > before);
        assert_eq!(d.block_table_count(), 2);
    }

    /// Runs one iteration of a 4-kernel loop where kernel `ki` faults
    /// blocks `base + 2*ki` and `base + 2*ki + 1` (full blocks), with
    /// generous overlap so prefetches actually land.
    fn loop_iteration(d: &mut DeepumDriver, base: u64, now: &mut Ns) {
        let full = PageMask::full();
        for ki in 0..4u32 {
            let k = kernel(&format!("K{ki}"));
            d.on_kernel_launch(*now, ExecId(ki), &k);
            for b in [base + 2 * ki as u64, base + 2 * ki as u64 + 1] {
                let miss = d.resident_miss(BlockNum::new(b), &full);
                if !miss.is_empty() {
                    let entries: Vec<FaultEntry> = miss
                        .iter_ones()
                        .map(|i| FaultEntry {
                            page: BlockNum::new(b).page(i),
                            kind: AccessKind::Read,
                            sm: SmId(0),
                        })
                        .collect();
                    d.handle_faults(*now, &entries).expect("faults handled");
                }
                d.touch(*now, BlockNum::new(b), &full);
                d.overlap_compute(*now, Ns::from_millis(50));
            }
            d.kernel_finished(*now);
            *now += Ns::from_millis(10);
        }
    }

    #[test]
    fn watchdog_disables_under_misprediction_storm_and_recovers() {
        // Oversubscribed device (4 blocks, 8-block working set) with an
        // aggressive watchdog. Phase 1 trains the correlation tables on
        // a stable loop. Phase 2 moves the working set to fresh blocks
        // every iteration, so the chain keeps prefetching last
        // iteration's blocks — pure waste — until the watchdog disables
        // prefetching. Phase 3 returns to a stable loop; during the
        // cooldown the correlator re-learns it from demand faults, and
        // the watchdog re-enables prefetching into a workload it now
        // predicts well.
        let cfg = DeepumConfig::default()
            .with_prefetch_degree(1)
            .with_watchdog(2, 25, 50, 6);
        let mut d = driver(4, cfg);
        let mut now = Ns::ZERO;

        for _ in 0..4 {
            loop_iteration(&mut d, 0, &mut now);
        }
        assert_eq!(d.health().watchdog_state, DegradationState::Normal);

        let mut base = 1000;
        for _ in 0..12 {
            loop_iteration(&mut d, base, &mut now);
            base += 100;
            if d.health().watchdog_state == DegradationState::Disabled {
                break;
            }
        }
        let mid = d.health();
        assert_eq!(
            mid.watchdog_state,
            DegradationState::Disabled,
            "sustained waste should disable prefetching; transitions: {:?}",
            mid.watchdog_transitions
        );
        assert!(d.counters().prefetch_wasted > 0);

        for _ in 0..8 {
            loop_iteration(&mut d, 0, &mut now);
        }
        let end = d.health();
        assert_eq!(
            end.watchdog_state,
            DegradationState::Normal,
            "cooldown should re-enable prefetching; transitions: {:?}",
            end.watchdog_transitions
        );
        let recovered = end
            .watchdog_transitions
            .iter()
            .any(|t| t.from == DegradationState::Disabled && t.to == DegradationState::Normal);
        assert!(recovered, "transitions: {:?}", end.watchdog_transitions);
        d.validate()
            .expect("degradation cycle leaves state consistent");
    }

    #[test]
    fn corr_drops_suppress_table_updates() {
        let plan = deepum_sim::faultinject::InjectionPlan {
            corr_drop_rate: 1.0,
            ..Default::default()
        };
        let mut clean = driver(16, DeepumConfig::default());
        train_loop(&mut clean, 3);
        assert!(clean.counters().block_table_updates > 0);

        let mut d = driver(16, DeepumConfig::default());
        let inj = plan.build_shared();
        UmBackend::install_injector(&mut d, inj.clone());
        train_loop(&mut d, 3);
        assert_eq!(d.counters().block_table_updates, 0);
        assert!(inj.borrow().stats().corr_records_dropped > 0);
    }

    #[test]
    fn predicted_window_backpressure_drops_and_reports() {
        // A tiny window capacity forces the bounded queue to shed its
        // oldest entries while an oversubscribed loop keeps predicting.
        let cfg = DeepumConfig {
            predicted_window_capacity: 2,
            ..DeepumConfig::default().with_prefetch_degree(4)
        };
        let mut d = driver(4, cfg);
        let mut now = Ns::ZERO;
        for _ in 0..6 {
            loop_iteration(&mut d, 0, &mut now);
        }
        let health = d.health();
        assert!(
            health.predicted_window_dropped > 0,
            "capacity 4 must overflow: {health:?}"
        );
        d.validate().expect("backpressure leaves state consistent");

        // The default capacity is a safety valve: the same loop never
        // touches it, so clean runs report default health.
        let mut clean = driver(4, DeepumConfig::default().with_prefetch_degree(4));
        let mut now = Ns::ZERO;
        for _ in 0..6 {
            loop_iteration(&mut clean, 0, &mut now);
        }
        assert_eq!(clean.health().predicted_window_dropped, 0);
    }

    #[test]
    fn pressure_governor_shrinks_lookahead_under_thrash() {
        // 8-block working set on a 4-block device: every iteration's
        // blocks are evicted before they repeat, so demand arrivals are
        // dominated by refaults until prefetching absorbs them.
        // Aggressive thresholds (Elevated at 1%, Thrashing at 2%) make
        // the governor classify that churn as Thrashing within a kernel
        // or two, and the launch hook must answer by shrinking the
        // effective look-ahead.
        let cfg = DeepumConfig::default()
            .with_prefetch_degree(8)
            .with_pressure_governor(8, 2, 1, 2);
        let mut d = driver(4, cfg);
        let mut now = Ns::ZERO;
        let mut max_shrink = 0;
        for _ in 0..10 {
            loop_iteration(&mut d, 0, &mut now);
            max_shrink = max_shrink.max(d.pressure_shrink);
        }
        assert!(max_shrink > 0, "thrash never shrank the look-ahead");
        assert!(max_shrink <= DeepumDriver::MAX_PRESSURE_SHRINK);
        assert!(d.window_resizes > 0);
        let stats = UmBackend::pressure(&d).expect("governed driver reports pressure");
        assert_eq!(stats.window_resizes, d.window_resizes);
        assert!(stats.refaults > 0, "oversubscribed loop must refault");
        assert!(stats.level_changes > 0);
        d.validate().expect("governed run leaves state consistent");

        // Ungoverned drivers report no pressure section at all.
        assert!(UmBackend::pressure(&driver(4, DeepumConfig::default())).is_none());
    }

    #[test]
    fn effective_degree_composes_watchdog_and_pressure() {
        let cfg = DeepumConfig::default().with_prefetch_degree(16);
        let mut d = driver(16, cfg);
        assert_eq!(d.effective_degree(), 16);
        d.pressure_shrink = 2;
        assert_eq!(d.effective_degree(), 4);
        // The shift floors at one kernel of look-ahead.
        d.pressure_shrink = DeepumDriver::MAX_PRESSURE_SHRINK;
        let mut tiny = driver(16, DeepumConfig::default().with_prefetch_degree(2));
        tiny.pressure_shrink = DeepumDriver::MAX_PRESSURE_SHRINK;
        assert_eq!(tiny.effective_degree(), 1);
    }

    #[test]
    fn relax_load_reverses_shed_load() {
        let cfg = DeepumConfig::default().with_prefetch_degree(16);
        let mut d = driver(16, cfg);
        d.shed_load();
        d.shed_load();
        assert_eq!(d.effective_degree(), 4);
        d.relax_load();
        assert_eq!(d.effective_degree(), 8);
        d.relax_load();
        assert_eq!(d.effective_degree(), 16);
        // Both ends saturate.
        d.relax_load();
        assert_eq!(d.effective_degree(), 16);
        for _ in 0..8 {
            d.shed_load();
        }
        assert_eq!(d.effective_degree(), 2);
    }

    #[test]
    fn demand_only_gates_prefetch_reversibly() {
        let mut d = driver(16, DeepumConfig::default().with_prefetch_degree(4));
        train_loop(&mut d, 2);
        assert!(d.prefetch_active());
        d.set_demand_only(true);
        assert!(!d.prefetch_active());
        // Unlike ECC poisoning, the override lifts cleanly.
        d.set_demand_only(false);
        assert!(d.prefetch_active());
        assert!(!d.is_poisoned());
    }

    #[test]
    fn mem_advise_forwards_to_um() {
        use deepum_runtime::interpose::LaunchObserver;
        let mut d = driver(16, DeepumConfig::default());
        let range = ByteRange::new(deepum_mem::UmAddr::new(0), 2 << 20);
        d.on_mem_advise(Ns::ZERO, range, Advice::ReadMostly);
        assert!(d.um().hints().is_read_mostly(BlockNum::new(0)));
    }

    #[test]
    fn overlap_budget_carries_debt() {
        let mut d = driver(16, DeepumConfig::default());
        train_loop(&mut d, 2);
        // Queue some prefetch work by faulting fresh blocks.
        d.on_kernel_launch(Ns::ZERO, ExecId(0), &kernel("A"));
        let entries = faults(0, 0..64);
        d.handle_faults(Ns::ZERO, &entries).expect("faults handled");
        // A tiny overlap budget cannot cover a whole migration: busy time
        // never exceeds the budget.
        let busy = d.overlap_compute(Ns::ZERO, Ns::from_nanos(100));
        assert!(busy <= Ns::from_nanos(100));
    }
}
