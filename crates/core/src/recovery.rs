//! Checkpoint/restore of the DeepUM driver and the launch journal for
//! replay recovery (DESIGN.md §11).
//!
//! A hard fault — scheduled device reset, driver crash mid-drain — ends
//! the current simulated GPU epoch. The executor recovers by restoring
//! the last checkpoint and re-executing the journaled kernel launches.
//! This module provides the three pieces the protocol needs from the
//! DeepUM side:
//!
//! * [`snapshot_deepum`] / [`restore_deepum`] — a versioned, checksummed,
//!   serde-free binary image of the whole driver: the nested UM driver
//!   (residency, LRU, counters), the correlation tables, the learned
//!   footprints, and the ephemeral prefetch state (chain walk, prefetch
//!   queue, predicted window, watchdog);
//! * [`LaunchJournal`] — the bounded record of kernel boundaries since
//!   the last checkpoint, bounding how much work a restore replays;
//! * [`RecoveryReport`] — the metrics block the executor attaches to the
//!   run report when recovery machinery was active.
//!
//! ECC poisoning state ([`crate::DeepumDriver::is_poisoned`]) is
//! deliberately *not* part of the snapshot: a restore rewinds learned
//! state, not hardware faults that already happened.

use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use serde::{Deserialize, Serialize};

use crate::chain::ChainWalk;
use crate::correlation::{BlockCorrelationTable, ExecCorrelationTable};
use crate::driver::DeepumDriver;
use crate::footprint::FootprintMap;
use crate::queues::{PrefetchCommand, SpscQueue};
use crate::watchdog::PrefetchWatchdog;

/// Recovery metrics attached to a run report when the hard-fault
/// machinery was enabled (see `ISSUE` acceptance criteria: reports of
/// crash-free plans must not change, so this block is optional there).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Checkpoints taken over the run.
    pub checkpoints: u64,
    /// Size of the last full checkpoint image, in bytes.
    pub snapshot_bytes: u64,
    /// Journaled kernel launches re-executed across all restores.
    pub replay_kernels: u64,
    /// Simulated downtime charged to hard faults: reset penalty plus the
    /// demand-only refill of the restored resident set. Kept out of the
    /// simulation clock so recovered runs stay byte-comparable to
    /// uninterrupted ones.
    pub downtime_ns: u64,
    /// Uncorrectable ECC hits that poisoned the correlation tables.
    pub ecc_poisonings: u64,
    /// Hard faults recovered by a checkpoint restore.
    pub restores: u64,
}

/// One journaled kernel boundary: enough to name the launch for replay
/// accounting (`seq` is the global launch sequence number, `iter`/`step`
/// the workload position).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Global kernel-launch sequence number.
    pub seq: u64,
    /// Workload iteration index.
    pub iter: u64,
    /// Step index within the iteration.
    pub step: u64,
}

/// Bounded journal of kernel boundaries since the last checkpoint.
///
/// The bound is the recovery-time budget: a restore replays at most
/// `capacity` launches. When the journal fills, the executor must take
/// an early checkpoint (which clears it) before launching more work.
///
/// # Example
///
/// ```
/// use deepum_core::recovery::{JournalEntry, LaunchJournal};
///
/// let mut j = LaunchJournal::new(2);
/// assert!(j.record(JournalEntry { seq: 0, iter: 0, step: 0 }));
/// assert!(j.record(JournalEntry { seq: 1, iter: 0, step: 1 }));
/// assert!(j.is_full());
/// assert!(!j.record(JournalEntry { seq: 2, iter: 0, step: 2 }));
/// j.clear();
/// assert!(j.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LaunchJournal {
    entries: Vec<JournalEntry>,
    capacity: usize,
}

impl LaunchJournal {
    /// Creates a journal bounded at `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LaunchJournal {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Appends a kernel boundary; returns `false` (dropping the entry)
    /// when the journal is full and a checkpoint is overdue.
    pub fn record(&mut self, entry: JournalEntry) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Entries recorded since the last [`LaunchJournal::clear`].
    pub fn entries(&self) -> &[JournalEntry] {
        &self.entries
    }

    /// Number of journaled boundaries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been journaled since the last checkpoint.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when the next [`LaunchJournal::record`] would be dropped.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Maximum journaled boundaries between checkpoints.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Forgets everything (a checkpoint was just taken).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Entries with launch sequence number `>= mark` — the launches a
    /// restore to the checkpoint generation stored at `mark` replays.
    pub fn since(&self, mark: u64) -> usize {
        self.entries.iter().filter(|e| e.seq >= mark).count()
    }

    /// Drops entries with `seq >= mark`: the run was rewound to `mark`
    /// and will re-journal those launches as it replays them.
    pub fn truncate_to(&mut self, mark: u64) {
        self.entries.retain(|e| e.seq < mark);
    }

    /// Drops entries with `seq < mark`: the oldest retained checkpoint
    /// generation was stored at `mark`, so no restore can need them.
    pub fn evict_before(&mut self, mark: u64) {
        self.entries.retain(|e| e.seq >= mark);
    }
}

fn write_opt_u32(w: &mut SnapshotWriter, v: Option<u32>) {
    w.bool(v.is_some());
    if let Some(v) = v {
        w.u32(v);
    }
}

fn read_opt_u32(r: &mut SnapshotReader<'_>) -> Result<Option<u32>, SnapshotError> {
    Ok(if r.bool()? { Some(r.u32()?) } else { None })
}

/// Serializes the full recoverable state of a [`DeepumDriver`] — nested
/// UM driver, correlation tables, footprints, execution context, and
/// every piece of prefetching-thread state — into one snapshot envelope.
pub fn snapshot_deepum(d: &DeepumDriver) -> Vec<u8> {
    // The envelope version follows the nested UM driver: v3 while the
    // device is pristine (byte-identical to pre-wear builds), v4 once
    // any page has been retired.
    let mut w = deepum_um::snapshot::driver_snapshot_writer(&d.um);
    deepum_um::snapshot::write_driver_state(&d.um, &mut w);
    d.exec_corr.encode_into(&mut w);

    w.u64(deepum_mem::u64_from_usize(d.block_tables.len()));
    for table in &d.block_tables {
        w.bool(table.is_some());
        if let Some(t) = table {
            t.encode_into(&mut w);
        }
    }
    d.footprints.encode_into(&mut w);

    write_opt_u32(&mut w, d.current_exec.map(|e| e.0));
    for h in d.history {
        w.u32(h.0);
    }
    w.bool(d.first_fault_pending);
    for opt in [d.prev_fault_block, d.last_fault_block] {
        w.bool(opt.is_some());
        if let Some(b) = opt {
            w.block(b);
        }
    }
    write_opt_u32(&mut w, d.pending_prediction.map(|e| e.0));

    w.bool(d.chain.is_some());
    if let Some(chain) = &d.chain {
        chain.encode_into(&mut w);
    }
    d.prefetch_q.encode_into(&mut w);
    w.u64(deepum_mem::u64_from_usize(d.enqueued.len()));
    for b in d.enqueued.iter() {
        w.block(b);
    }
    let protected = d.protected.to_vec();
    w.u64(deepum_mem::u64_from_usize(protected.len()));
    for b in protected {
        w.block(b);
    }
    w.u64(deepum_mem::u64_from_usize(d.predicted_window.len()));
    for &(expires, block) in &d.predicted_window {
        w.u64(expires);
        w.block(block);
    }
    w.u64(d.kernel_seq);
    w.ns(d.h2d_debt);
    w.ns(d.d2h_debt);

    w.bool(d.watchdog.is_some());
    if let Some(wd) = &d.watchdog {
        wd.encode_into(&mut w);
    }
    w.u64(d.wd_last_prefetched);
    w.u64(d.wd_last_wasted);
    w.u64(d.window_dropped);
    w.u32(d.pressure_shrink);
    w.u64(d.window_resizes);
    deepum_um::snapshot::write_counters(&d.local, &mut w);
    w.finish()
}

/// Restores a [`DeepumDriver`] from an envelope built by
/// [`snapshot_deepum`]. The ECC poisoning flag and count are left
/// untouched: a fault that already happened is not rewound.
///
/// # Errors
///
/// Any [`SnapshotError`] from envelope validation or payload decode. On
/// error the driver may hold a partially restored state and must not be
/// used — the executor treats a failed restore as an unrecoverable run.
pub fn restore_deepum(d: &mut DeepumDriver, bytes: &[u8]) -> Result<(), SnapshotError> {
    let mut r = SnapshotReader::new(bytes)?;
    deepum_um::snapshot::read_driver_state(&mut d.um, &mut r)?;
    let exec_corr = ExecCorrelationTable::decode_from(&mut r)?;

    let num_tables = r.len_prefix(1)?;
    let mut block_tables = Vec::with_capacity(num_tables);
    for _ in 0..num_tables {
        block_tables.push(if r.bool()? {
            Some(BlockCorrelationTable::decode_from(&mut r)?)
        } else {
            None
        });
    }
    let footprints = FootprintMap::decode_from(&mut r)?;

    let current_exec = read_opt_u32(&mut r)?.map(deepum_runtime::exec_table::ExecId);
    let mut history = [deepum_runtime::exec_table::ExecId(0); 3];
    for h in &mut history {
        *h = deepum_runtime::exec_table::ExecId(r.u32()?);
    }
    let first_fault_pending = r.bool()?;
    let prev_fault_block = if r.bool()? { Some(r.block()?) } else { None };
    let last_fault_block = if r.bool()? { Some(r.block()?) } else { None };
    let pending_prediction = read_opt_u32(&mut r)?.map(deepum_runtime::exec_table::ExecId);

    let chain = if r.bool()? {
        Some(ChainWalk::decode_from(&mut r)?)
    } else {
        None
    };
    let prefetch_q: SpscQueue<PrefetchCommand> = SpscQueue::decode_from(&mut r)?;
    let mut enqueued = deepum_mem::DenseBlockSet::new();
    for _ in 0..r.len_prefix(8)? {
        enqueued.insert(r.block()?);
    }
    let mut protected = Vec::new();
    for _ in 0..r.len_prefix(8)? {
        protected.push(r.block()?);
    }
    let mut predicted_window = std::collections::VecDeque::new();
    for _ in 0..r.len_prefix(16)? {
        let expires = r.u64()?;
        let block = r.block()?;
        predicted_window.push_back((expires, block));
    }
    let kernel_seq = r.u64()?;
    let h2d_debt = r.ns()?;
    let d2h_debt = r.ns()?;

    let watchdog = if r.bool()? {
        Some(PrefetchWatchdog::decode_from(&mut r)?)
    } else {
        None
    };
    let wd_last_prefetched = r.u64()?;
    let wd_last_wasted = r.u64()?;
    let window_dropped = r.u64()?;
    let pressure_shrink = r.u32()?;
    let window_resizes = r.u64()?;
    let local = deepum_um::snapshot::read_counters(&mut r)?;
    r.finish()?;

    d.exec_corr = exec_corr;
    d.block_tables = block_tables;
    d.footprints = footprints;
    d.current_exec = current_exec;
    d.history = history;
    d.first_fault_pending = first_fault_pending;
    d.prev_fault_block = prev_fault_block;
    d.last_fault_block = last_fault_block;
    d.pending_prediction = pending_prediction;
    d.chain = chain;
    d.prefetch_q = prefetch_q;
    d.enqueued = enqueued;
    // The protected set is shared with the nested UM driver through an
    // `Arc`; replacing its contents updates both views at once.
    d.protected.replace(protected);
    d.predicted_window = predicted_window;
    d.kernel_seq = kernel_seq;
    d.h2d_debt = h2d_debt;
    d.d2h_debt = d2h_debt;
    d.watchdog = watchdog;
    d.wd_last_prefetched = wd_last_prefetched;
    d.wd_last_wasted = wd_last_wasted;
    d.window_dropped = window_dropped;
    d.pressure_shrink = pressure_shrink;
    d.window_resizes = window_resizes;
    d.local = local;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_gpu::engine::UmBackend;
    use deepum_gpu::fault::{AccessKind, FaultEntry, SmId};
    use deepum_gpu::kernel::KernelLaunch;
    use deepum_mem::{BlockNum, PageMask, BLOCK_SIZE};
    use deepum_runtime::exec_table::ExecId;
    use deepum_runtime::interpose::LaunchObserver;
    use deepum_sim::costs::CostModel;
    use deepum_sim::time::Ns;

    use crate::config::DeepumConfig;

    fn driver(capacity_blocks: u64) -> DeepumDriver {
        let costs = CostModel::v100_32gb().with_device_memory(capacity_blocks * BLOCK_SIZE as u64);
        DeepumDriver::new(costs, DeepumConfig::default())
    }

    fn fault_block(d: &mut DeepumDriver, now: Ns, block: u64) {
        let entries: Vec<FaultEntry> = (0..64)
            .map(|i| FaultEntry {
                page: BlockNum::new(block).page(i),
                kind: AccessKind::Read,
                sm: SmId(0),
            })
            .collect();
        d.handle_faults(now, &entries).expect("faults handled");
    }

    /// Drives a 2-kernel loop for `iters` iterations so every piece of
    /// learned and ephemeral state is populated.
    fn train(d: &mut DeepumDriver, iters: usize) {
        let (ka, kb) = (
            KernelLaunch::new("A", &[], vec![], Ns::from_micros(10)),
            KernelLaunch::new("B", &[], vec![], Ns::from_micros(10)),
        );
        let mut now = Ns::ZERO;
        for _ in 0..iters {
            d.on_kernel_launch(now, ExecId(0), &ka);
            for b in [0u64, 1] {
                if !d
                    .resident_miss(BlockNum::new(b), &PageMask::first_n(64))
                    .is_empty()
                {
                    fault_block(d, now, b);
                }
                d.touch(now, BlockNum::new(b), &PageMask::first_n(64));
            }
            d.overlap_compute(now, Ns::from_millis(10));
            d.kernel_finished(now);
            d.on_kernel_launch(now, ExecId(1), &kb);
            for b in [2u64, 3] {
                if !d
                    .resident_miss(BlockNum::new(b), &PageMask::first_n(64))
                    .is_empty()
                {
                    fault_block(d, now, b);
                }
                d.touch(now, BlockNum::new(b), &PageMask::first_n(64));
            }
            d.overlap_compute(now, Ns::from_millis(10));
            d.kernel_finished(now);
            now += Ns::from_millis(25);
        }
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let mut d = driver(16);
        train(&mut d, 3);
        let bytes = snapshot_deepum(&d);

        let mut restored = driver(16);
        restore_deepum(&mut restored, &bytes).expect("restore succeeds");
        restored.validate().expect("restored driver validates");
        assert_eq!(restored.counters(), d.counters());
        assert_eq!(restored.table_memory_bytes(), d.table_memory_bytes());
        assert_eq!(restored.block_table_count(), d.block_table_count());
        assert_eq!(restored.health(), d.health());
        assert_eq!(restored.um().resident_pages(), d.um().resident_pages());
        // Re-snapshot of the restored driver is byte-identical.
        assert_eq!(snapshot_deepum(&restored), bytes);
    }

    #[test]
    fn restored_driver_continues_identically() {
        let mut d = driver(16);
        train(&mut d, 2);
        let bytes = snapshot_deepum(&d);
        let mut restored = driver(16);
        restore_deepum(&mut restored, &bytes).expect("restore succeeds");

        // Advancing both by the same workload keeps them in lockstep.
        train(&mut d, 2);
        train(&mut restored, 2);
        assert_eq!(restored.counters(), d.counters());
        assert_eq!(snapshot_deepum(&restored), snapshot_deepum(&d));
    }

    #[test]
    fn bit_flip_is_rejected() {
        let mut d = driver(16);
        train(&mut d, 2);
        let mut bytes = snapshot_deepum(&d);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        let mut restored = driver(16);
        assert!(restore_deepum(&mut restored, &bytes).is_err());
    }

    #[test]
    fn snapshot_via_backend_trait() {
        let mut d = driver(16);
        train(&mut d, 2);
        let bytes = UmBackend::snapshot_state(&d).expect("deepum snapshots");
        let mut restored = driver(16);
        UmBackend::restore_state(&mut restored, &bytes).expect("trait restore");
        assert_eq!(
            UmBackend::resident_pages(&restored),
            UmBackend::resident_pages(&d)
        );
    }

    #[test]
    fn ecc_poisoning_survives_restore() {
        let plan = deepum_sim::faultinject::InjectionPlan {
            ecc_rate: 1.0,
            ..Default::default()
        };
        let mut d = driver(16);
        train(&mut d, 2);
        let bytes = snapshot_deepum(&d);

        UmBackend::install_injector(&mut d, plan.build_shared());
        fault_block(&mut d, Ns::from_millis(100), 9);
        assert!(d.is_poisoned());
        assert_eq!(d.ecc_poisonings(), 1);
        assert_eq!(
            d.health().watchdog_state,
            deepum_sim::faultinject::DegradationState::Disabled
        );

        // Restoring a pre-poisoning checkpoint rewinds the tables but
        // not the hardware fault.
        restore_deepum(&mut d, &bytes).expect("restore succeeds");
        assert!(d.is_poisoned());
        assert_eq!(d.ecc_poisonings(), 1);
    }

    #[test]
    fn poisoned_driver_stops_prefetching_but_keeps_paging() {
        let plan = deepum_sim::faultinject::InjectionPlan {
            ecc_rate: 1.0,
            ..Default::default()
        };
        let mut d = driver(16);
        UmBackend::install_injector(&mut d, plan.build_shared());
        train(&mut d, 1);
        assert!(d.is_poisoned());
        assert_eq!(d.block_table_count(), 0);
        let before = d.counters();
        train(&mut d, 2);
        let delta = d.counters().delta_since(&before);
        // Demand paging still works; no prefetch machinery runs.
        assert_eq!(delta.pages_prefetched, 0);
        assert_eq!(delta.chain_walks, 0);
        assert_eq!(delta.block_table_updates, 0);
        d.validate().expect("poisoned driver stays consistent");
    }

    #[test]
    fn governed_driver_round_trips_pressure_state() {
        // 3-block rotation on a 2-block device with a hair-trigger
        // governor: refaults, cooldowns, a non-Normal level, and at
        // least one look-ahead resize are all live state when the
        // snapshot is taken mid-churn.
        let costs = CostModel::v100_32gb().with_device_memory(2 * BLOCK_SIZE as u64);
        let cfg = DeepumConfig::default().with_pressure_governor(8, 4, 1, 2);
        let k = KernelLaunch::new("A", &[], vec![], Ns::from_micros(10));
        let mut d = DeepumDriver::new(costs.clone(), cfg.clone());
        let mut now = Ns::ZERO;
        for i in 0..8u64 {
            d.on_kernel_launch(now, ExecId(0), &k);
            let b = i % 3;
            let entries: Vec<FaultEntry> = (0..512)
                .map(|p| FaultEntry {
                    page: BlockNum::new(b).page(p),
                    kind: AccessKind::Read,
                    sm: SmId(0),
                })
                .collect();
            d.handle_faults(now, &entries).expect("faults handled");
            d.touch(now, BlockNum::new(b), &PageMask::full());
            d.kernel_finished(now);
            now += Ns::from_millis(1);
        }
        let stats = UmBackend::pressure(&d).expect("governed driver reports pressure");
        assert!(stats.refaults > 0, "rotation must refault");
        assert!(stats.window_resizes > 0, "thrash must resize the window");

        let bytes = snapshot_deepum(&d);
        let mut restored = DeepumDriver::new(costs, cfg);
        restore_deepum(&mut restored, &bytes).expect("restore succeeds");
        restored.validate().expect("restored driver validates");
        assert_eq!(UmBackend::pressure(&restored), Some(stats));
        assert_eq!(restored.counters(), d.counters());
        assert_eq!(snapshot_deepum(&restored), bytes);
    }

    #[test]
    fn journal_bounds_replay() {
        let mut j = LaunchJournal::new(3);
        for seq in 0..3 {
            assert!(j.record(JournalEntry {
                seq,
                iter: 0,
                step: seq
            }));
        }
        assert!(j.is_full());
        assert!(!j.record(JournalEntry {
            seq: 3,
            iter: 0,
            step: 3
        }));
        assert_eq!(j.len(), 3);
        assert_eq!(j.entries()[2].seq, 2);
        j.clear();
        assert!(j.is_empty() && !j.is_full());
        assert_eq!(j.capacity(), 3);
    }

    #[test]
    fn zero_capacity_journal_clamps_to_one() {
        let mut j = LaunchJournal::new(0);
        assert_eq!(j.capacity(), 1);
        assert!(j.record(JournalEntry {
            seq: 0,
            iter: 0,
            step: 0
        }));
        assert!(j.is_full());
    }
}
