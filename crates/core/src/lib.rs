//! DeepUM — the paper's primary contribution.
//!
//! This crate implements the DeepUM *driver* (the Linux kernel module of
//! the paper, Section 3) on top of the simulated NVIDIA UM driver from
//! `deepum-um`:
//!
//! * [`correlation::ExecCorrelationTable`] — the single execution-ID
//!   correlation table recording kernel-launch history as variable sets
//!   of `(prev3, next)` records (Fig. 6);
//! * [`correlation::BlockCorrelationTable`] — one set-associative UM-block
//!   correlation table per execution ID, with `NumRows × Assoc` ways of
//!   `NumSuccs` MRU-ordered successors plus the *start*/*end* block
//!   pointers used for chaining (Fig. 7);
//! * [`chain`] — the prefetching thread's chaining walk: successor
//!   expansion within the current kernel's table, then hopping to the
//!   predicted next kernel's table at its *end* block (Section 4.2);
//! * [`queues::SpscQueue`] — the single-producer/single-consumer fault
//!   and prefetch queues (Section 3.1);
//! * [`driver::DeepumDriver`] — the four kernel threads (fault handling,
//!   correlator, prefetching, migration) folded into one deterministic
//!   component that implements the GPU engine's
//!   [`deepum_gpu::engine::UmBackend`] and the runtime's
//!   [`deepum_runtime::interpose::LaunchObserver`];
//! * the two fault-handling optimizations: **pre-eviction** guided by the
//!   correlation tables (Section 5.1) and **invalidation of UM blocks of
//!   inactive PT blocks** (Section 5.2), toggled via
//!   [`config::DeepumConfig`].

#![forbid(unsafe_code)]

pub mod chain;
pub mod ckpt;
pub mod config;
pub mod correlation;
pub mod driver;
pub mod footprint;
pub mod queues;
pub mod recovery;
pub mod watchdog;

pub use config::DeepumConfig;
pub use correlation::{BlockCorrelationTable, ExecCorrelationTable};
pub use driver::DeepumDriver;
pub use footprint::FootprintMap;
pub use queues::{PrefetchCommand, SpscQueue};
pub use recovery::{JournalEntry, LaunchJournal, RecoveryReport};
pub use watchdog::PrefetchWatchdog;
