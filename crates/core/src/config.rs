//! DeepUM configuration knobs.

use serde::{Deserialize, Serialize};

/// Tunable parameters of the DeepUM driver.
///
/// Defaults follow the paper's evaluation configuration: UM-block
/// correlation tables with 2048 rows, two-way associativity, and four
/// successors (Section 6.2 / Config9 of Table 6). The prefetch degree is
/// measured in *simulated* kernels, each standing for several real CUDA
/// launches, so its default (256) sits above the paper's N = 32 sweet
/// spot while playing the same role (Fig. 11). The three `enable_*`
/// toggles drive the Figure-10 ablation.
///
/// # Example
///
/// ```
/// use deepum_core::config::DeepumConfig;
///
/// let prefetch_only = DeepumConfig {
///     enable_preevict: false,
///     enable_invalidate: false,
///     ..DeepumConfig::default()
/// };
/// assert!(prefetch_only.enable_prefetch);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepumConfig {
    /// `NumRows`: rows per UM-block correlation table.
    pub block_table_rows: usize,
    /// `Assoc`: ways per row.
    pub block_table_assoc: usize,
    /// `NumSuccs`: MRU-ordered successor slots per way.
    pub block_table_succs: usize,
    /// `N`: chaining looks ahead this many predicted kernels
    /// (Section 4.2's pause bound, swept in Fig. 11). One simulated
    /// kernel stands for several real CUDA launches (cuDNN/cuBLAS emit
    /// many kernels per operator), so the default is correspondingly
    /// larger than the paper's sweet spot of 32.
    pub prefetch_degree: usize,
    /// Capacity of the prefetch command queue.
    pub prefetch_queue_capacity: usize,
    /// Correlation prefetching on/off (Fig. 10 ablation).
    pub enable_prefetch: bool,
    /// Page pre-eviction on/off (Section 5.1, Fig. 10 ablation).
    pub enable_preevict: bool,
    /// Inactive-PT-block invalidation on/off (Section 5.2, Fig. 10).
    pub enable_invalidate: bool,
    /// Pre-eviction keeps at least this many UM blocks of device memory
    /// free so demand faults find room without critical-path eviction.
    pub preevict_headroom_blocks: u64,
    /// Prefetch-accuracy watchdog on/off. Off by default: the watchdog
    /// only changes behaviour when mispredictions are rampant, which in
    /// this simulation means chaos-injection runs.
    pub enable_watchdog: bool,
    /// Kernel launches per watchdog evaluation window.
    pub watchdog_window_kernels: u64,
    /// Wasted-prefetch percentage at which the watchdog halves the
    /// prefetch degree. Integer percent to keep the config `Eq`.
    pub watchdog_throttle_pct: u64,
    /// Wasted-prefetch percentage at which the watchdog disables
    /// correlation prefetching until the cooldown elapses.
    pub watchdog_disable_pct: u64,
    /// Kernel launches the watchdog keeps prefetching disabled before
    /// re-enabling it.
    pub watchdog_cooldown_kernels: u64,
    /// Upper bound on the predicted-window (eviction-protection) queue;
    /// entries past it are dropped oldest-first (backpressure) and
    /// counted in the run's health report. The default is sized so
    /// normal runs never hit it — it is a safety valve against
    /// pathological chain churn, not a tuning knob.
    pub predicted_window_capacity: usize,
    /// Memory-pressure governor on/off. Off by default: governed runs
    /// change eviction order, so the toggle keeps untouched runs
    /// byte-identical to pre-governor builds.
    pub enable_pressure_governor: bool,
    /// Kernel launches within which an evicted-then-demand-refaulted
    /// block counts as a refault (ping-pong).
    pub pressure_refault_window: u64,
    /// Kernel launches a refaulted block stays out of first-pass victim
    /// selection.
    pub pressure_cooldown_kernels: u64,
    /// EWMA refault score (integer percent) at which pressure is
    /// classified `Elevated`.
    pub pressure_elevated_pct: u64,
    /// EWMA refault score (integer percent) at which pressure is
    /// classified `Thrashing` and the prefetch window starts shrinking.
    pub pressure_thrashing_pct: u64,
    /// EWMA weight shift: each kernel's refault-ratio sample carries
    /// weight `1 / 2^shift`.
    pub pressure_ewma_shift: u32,
}

impl DeepumConfig {
    /// The paper's evaluation configuration.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Ablation step 1: correlation prefetching only (Fig. 10
    /// "Prefetching").
    pub fn prefetch_only() -> Self {
        DeepumConfig {
            enable_preevict: false,
            enable_invalidate: false,
            ..Self::default()
        }
    }

    /// Ablation step 2: prefetching + pre-eviction (Fig. 10
    /// "Prefetching+Preeviction").
    pub fn prefetch_preevict() -> Self {
        DeepumConfig {
            enable_invalidate: false,
            ..Self::default()
        }
    }

    /// Returns the configuration with a different prefetch degree `N`.
    pub fn with_prefetch_degree(mut self, n: usize) -> Self {
        self.prefetch_degree = n;
        self
    }

    /// Returns the configuration with different UM-block table geometry
    /// (Table 6's `Assoc`, `NumSuccs`, `NumRows`).
    pub fn with_block_table(mut self, assoc: usize, succs: usize, rows: usize) -> Self {
        self.block_table_assoc = assoc;
        self.block_table_succs = succs;
        self.block_table_rows = rows;
        self
    }

    /// Enables the prefetch-accuracy watchdog with explicit window,
    /// throttle/disable thresholds (integer percent of wasted prefetched
    /// pages), and cooldown.
    pub fn with_watchdog(
        mut self,
        window_kernels: u64,
        throttle_pct: u64,
        disable_pct: u64,
        cooldown_kernels: u64,
    ) -> Self {
        self.enable_watchdog = true;
        self.watchdog_window_kernels = window_kernels;
        self.watchdog_throttle_pct = throttle_pct;
        self.watchdog_disable_pct = disable_pct;
        self.watchdog_cooldown_kernels = cooldown_kernels;
        self
    }

    /// Enables the memory-pressure governor with explicit refault
    /// window, victim cooldown, and classification thresholds (integer
    /// percent of the EWMA refault score).
    pub fn with_pressure_governor(
        mut self,
        refault_window: u64,
        cooldown_kernels: u64,
        elevated_pct: u64,
        thrashing_pct: u64,
    ) -> Self {
        self.enable_pressure_governor = true;
        self.pressure_refault_window = refault_window;
        self.pressure_cooldown_kernels = cooldown_kernels;
        self.pressure_elevated_pct = elevated_pct;
        self.pressure_thrashing_pct = thrashing_pct;
        self
    }
}

impl Default for DeepumConfig {
    fn default() -> Self {
        DeepumConfig {
            block_table_rows: 2048,
            block_table_assoc: 2,
            block_table_succs: 4,
            prefetch_degree: 256,
            prefetch_queue_capacity: 8192,
            enable_prefetch: true,
            enable_preevict: true,
            enable_invalidate: true,
            preevict_headroom_blocks: 8,
            enable_watchdog: false,
            watchdog_window_kernels: 8,
            watchdog_throttle_pct: 50,
            watchdog_disable_pct: 90,
            watchdog_cooldown_kernels: 16,
            predicted_window_capacity: 1 << 20,
            enable_pressure_governor: false,
            pressure_refault_window: 8,
            pressure_cooldown_kernels: 4,
            pressure_elevated_pct: 15,
            pressure_thrashing_pct: 35,
            pressure_ewma_shift: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_config9() {
        let c = DeepumConfig::default();
        assert_eq!(c.block_table_rows, 2048);
        assert_eq!(c.block_table_assoc, 2);
        assert_eq!(c.block_table_succs, 4);
        assert!(c.enable_prefetch && c.enable_preevict && c.enable_invalidate);
    }

    #[test]
    fn ablation_presets_disable_progressively() {
        let p = DeepumConfig::prefetch_only();
        assert!(p.enable_prefetch && !p.enable_preevict && !p.enable_invalidate);
        let pp = DeepumConfig::prefetch_preevict();
        assert!(pp.enable_prefetch && pp.enable_preevict && !pp.enable_invalidate);
    }

    #[test]
    fn builders_override() {
        let c = DeepumConfig::default()
            .with_prefetch_degree(8)
            .with_block_table(4, 8, 512);
        assert_eq!(c.prefetch_degree, 8);
        assert_eq!(
            (c.block_table_assoc, c.block_table_succs, c.block_table_rows),
            (4, 8, 512)
        );
    }

    #[test]
    fn pressure_governor_defaults_off_and_builder_enables() {
        assert!(!DeepumConfig::default().enable_pressure_governor);
        let c = DeepumConfig::default().with_pressure_governor(4, 2, 10, 25);
        assert!(c.enable_pressure_governor);
        assert_eq!(c.pressure_refault_window, 4);
        assert_eq!(c.pressure_cooldown_kernels, 2);
        assert_eq!(c.pressure_elevated_pct, 10);
        assert_eq!(c.pressure_thrashing_pct, 25);
    }

    #[test]
    fn watchdog_defaults_off_and_builder_enables() {
        assert!(!DeepumConfig::default().enable_watchdog);
        let c = DeepumConfig::default().with_watchdog(4, 30, 60, 8);
        assert!(c.enable_watchdog);
        assert_eq!(c.watchdog_window_kernels, 4);
        assert_eq!(c.watchdog_throttle_pct, 30);
        assert_eq!(c.watchdog_disable_pct, 60);
        assert_eq!(c.watchdog_cooldown_kernels, 8);
    }
}
