//! Chaining — the prefetching thread's table walk (paper Section 4.2).
//!
//! "When a page fault occurs, the DeepUM driver prefetches all pages in
//! the UM blocks correlated to the faulted UM block by looking up the UM
//! block correlation table of the currently executing kernel. When the
//! prefetching thread meets the UM block that is the same as the end
//! block [...], it ends prefetching for the kernel and predicts the
//! kernel that will execute next by looking up the execution ID table.
//! Then, it starts prefetching for the predicted kernel, beginning with
//! the start UM block [...]. The chaining ends when a new page fault
//! interrupt signal is raised, or the prefetching thread fails to predict
//! the next kernel to execute. The chaining pauses when the prefetching
//! thread has enqueued all prefetch commands for the next N kernels. The
//! prefetching thread resumes after the currently executing kernel
//! finishes."

use std::collections::{BTreeSet, VecDeque};

use deepum_mem::BlockNum;
use deepum_runtime::exec_table::ExecId;
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

use crate::correlation::{BlockCorrelationTable, ExecCorrelationTable};
use crate::queues::PrefetchCommand;

/// Outcome of one chaining step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStep {
    /// A block to enqueue on the prefetch queue.
    Emit(PrefetchCommand),
    /// The walk crossed a kernel boundary: it predicted `predicted` as
    /// the `ahead`-th kernel after the currently executing one.
    Transition {
        /// The execution ID predicted to run next.
        predicted: ExecId,
        /// Look-ahead depth after this transition (1 = the very next
        /// kernel).
        ahead: usize,
    },
    /// Look-ahead window exhausted (`N` kernels ahead); the walk resumes
    /// when the window slides.
    Paused,
    /// The walk cannot continue (frontier exhausted, no end-block match,
    /// or next-kernel prediction failed).
    Ended,
}

/// State of one chaining walk, (re)started at every page-fault batch.
#[derive(Debug, Clone)]
pub struct ChainWalk {
    exec: ExecId,
    history: [ExecId; 3],
    origin: BlockNum,
    seeded: bool,
    pending_transition: bool,
    paused: bool,
    ended: bool,
    kernels_ahead: usize,
    /// Blocks discovered but not yet handed to the prefetch queue.
    emit_q: VecDeque<BlockNum>,
    /// Blocks whose successors have not been expanded yet.
    frontier: VecDeque<BlockNum>,
    visited: BTreeSet<BlockNum>,
}

impl ChainWalk {
    /// Starts a walk at `fault_block`, the most recently faulted block of
    /// the kernel with execution ID `exec`; `history` is the three
    /// kernels that ran before `exec` (oldest first).
    pub fn new(exec: ExecId, history: [ExecId; 3], fault_block: BlockNum) -> Self {
        let mut visited = BTreeSet::new();
        visited.insert(fault_block);
        ChainWalk {
            exec,
            history,
            origin: fault_block,
            seeded: false,
            pending_transition: false,
            paused: false,
            ended: false,
            kernels_ahead: 0,
            emit_q: VecDeque::new(),
            frontier: VecDeque::new(),
            visited,
        }
    }

    /// How many kernel transitions the walk has made beyond the currently
    /// executing kernel.
    pub fn kernels_ahead(&self) -> usize {
        self.kernels_ahead
    }

    /// True if the walk hit the look-ahead bound.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// True if the walk can never produce more commands.
    pub fn is_ended(&self) -> bool {
        self.ended
    }

    /// Slides the look-ahead window after a kernel transition on the GPU:
    /// un-pauses the walk and decrements the ahead count.
    pub fn on_kernel_advanced(&mut self) {
        self.kernels_ahead = self.kernels_ahead.saturating_sub(1);
        self.paused = false;
    }

    /// Advances the walk by one step.
    ///
    /// `block_tables` is indexed by execution ID (`None` = table not yet
    /// allocated); `max_ahead` is the prefetch degree `N`.
    pub fn step(
        &mut self,
        block_tables: &[Option<BlockCorrelationTable>],
        exec_table: &ExecCorrelationTable,
        max_ahead: usize,
    ) -> ChainStep {
        if self.ended {
            return ChainStep::Ended;
        }
        if self.paused {
            return ChainStep::Paused;
        }
        loop {
            // Discovered blocks go out first.
            if let Some(block) = self.emit_q.pop_front() {
                return ChainStep::Emit(PrefetchCommand {
                    block,
                    exec: self.exec,
                });
            }
            if self.pending_transition {
                return self.transition(block_tables, exec_table, max_ahead);
            }

            let Some(table) = table_of(block_tables, self.exec) else {
                self.ended = true;
                return ChainStep::Ended;
            };

            // Pick the next block whose successors to expand.
            let block = if !self.seeded {
                self.seeded = true;
                self.origin
            } else {
                match self.frontier.pop_front() {
                    Some(b) => b,
                    None => {
                        // This kernel's recorded pattern is walked out
                        // without meeting the end block (its start/end
                        // anchors were rewritten by a residual-fault
                        // execution). Hop to the predicted next kernel —
                        // the chain only truly ends on prediction failure.
                        self.pending_transition = true;
                        continue;
                    }
                }
            };

            // Expand: every newly met successor is a prefetch candidate.
            // Meeting the end block stops expansion for this kernel — but
            // the successors met so far (including the end block itself)
            // are still prefetched, as in the paper's Fig. 7 walk-through.
            let mut met_end = false;
            for &succ in table.successors(block) {
                if self.visited.insert(succ) {
                    self.emit_q.push_back(succ);
                    if table.end() == Some(succ) {
                        met_end = true;
                    } else {
                        self.frontier.push_back(succ);
                    }
                } else if table.end() == Some(succ) {
                    met_end = true;
                }
            }
            if met_end {
                self.pending_transition = true;
                self.frontier.clear();
            }
        }
    }

    /// Writes the whole walk state into a checkpoint payload; block lists
    /// keep their queue order so a restored walk resumes identically.
    pub(crate) fn encode_into(&self, w: &mut SnapshotWriter) {
        w.u32(self.exec.0);
        for h in self.history {
            w.u32(h.0);
        }
        w.block(self.origin);
        w.bool(self.seeded);
        w.bool(self.pending_transition);
        w.bool(self.paused);
        w.bool(self.ended);
        w.u64(deepum_mem::u64_from_usize(self.kernels_ahead));
        for list in [&self.emit_q, &self.frontier] {
            w.u64(deepum_mem::u64_from_usize(list.len()));
            for &b in list {
                w.block(b);
            }
        }
        w.u64(deepum_mem::u64_from_usize(self.visited.len()));
        for &b in &self.visited {
            w.block(b);
        }
    }

    /// Reads a walk written by [`ChainWalk::encode_into`].
    pub(crate) fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let exec = ExecId(r.u32()?);
        let mut history = [ExecId(0); 3];
        for h in &mut history {
            *h = ExecId(r.u32()?);
        }
        let origin = r.block()?;
        let seeded = r.bool()?;
        let pending_transition = r.bool()?;
        let paused = r.bool()?;
        let ended = r.bool()?;
        let kernels_ahead = usize::try_from(r.u64()?)
            .map_err(|_| SnapshotError::Corrupt("kernels_ahead overflows usize".to_string()))?;
        let mut emit_q = VecDeque::new();
        for _ in 0..r.len_prefix(8)? {
            emit_q.push_back(r.block()?);
        }
        let mut frontier = VecDeque::new();
        for _ in 0..r.len_prefix(8)? {
            frontier.push_back(r.block()?);
        }
        let mut visited = BTreeSet::new();
        for _ in 0..r.len_prefix(8)? {
            visited.insert(r.block()?);
        }
        Ok(ChainWalk {
            exec,
            history,
            origin,
            seeded,
            pending_transition,
            paused,
            ended,
            kernels_ahead,
            emit_q,
            frontier,
            visited,
        })
    }

    fn transition(
        &mut self,
        block_tables: &[Option<BlockCorrelationTable>],
        exec_table: &ExecCorrelationTable,
        max_ahead: usize,
    ) -> ChainStep {
        if self.kernels_ahead >= max_ahead {
            self.paused = true;
            return ChainStep::Paused;
        }
        let Some(predicted) = exec_table.predict(self.exec, self.history) else {
            self.ended = true;
            return ChainStep::Ended;
        };
        self.history = [self.history[1], self.history[2], self.exec];
        self.exec = predicted;
        self.kernels_ahead += 1;
        self.pending_transition = false;
        self.seeded = true;
        self.frontier.clear();
        self.emit_q.clear();
        self.visited.clear();

        match table_of(block_tables, predicted).and_then(|t| t.start()) {
            Some(start) => {
                self.visited.insert(start);
                self.emit_q.push_back(start);
                self.frontier.push_back(start);
            }
            None => {
                // The predicted kernel has never faulted (its working
                // set is always resident): nothing to prefetch for it —
                // hop onwards at the next step instead of ending.
                self.pending_transition = true;
            }
        }
        ChainStep::Transition {
            predicted,
            ahead: self.kernels_ahead,
        }
    }
}

fn table_of(
    tables: &[Option<BlockCorrelationTable>],
    exec: ExecId,
) -> Option<&BlockCorrelationTable> {
    tables.get(exec.index()).and_then(Option::as_ref)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u64) -> BlockNum {
        BlockNum::new(i)
    }
    const fn e(i: u32) -> ExecId {
        ExecId(i)
    }

    /// Builds the Fig. 7 tables: exec 0 over blocks a..q, exec 1 starting
    /// at k.
    fn fig7() -> (Vec<Option<BlockCorrelationTable>>, ExecCorrelationTable) {
        let (a, bb, c, d, ee, p, q) = (1, 2, 3, 4, 5, 16, 17);
        let mut t0 = BlockCorrelationTable::new(64, 2, 4);
        t0.record_pair(b(a), b(bb));
        t0.record_pair(b(a), b(p));
        t0.record_pair(b(bb), b(ee));
        t0.record_pair(b(bb), b(q));
        t0.record_pair(b(c), b(d));
        t0.set_start(b(a));
        t0.set_end(b(q));

        let (f, g, k, n, tt, u, i) = (6, 7, 11, 14, 20, 21, 9);
        let mut t1 = BlockCorrelationTable::new(64, 2, 4);
        t1.record_pair(b(f), b(ee));
        t1.record_pair(b(f), b(u));
        t1.record_pair(b(g), b(tt));
        t1.record_pair(b(g), b(i));
        t1.record_pair(b(k), b(g));
        t1.record_pair(b(k), b(n));
        t1.set_start(b(k));
        t1.set_end(b(u));

        let mut exec = ExecCorrelationTable::new();
        // After context [10,11,12], exec 0 is followed by exec 1.
        exec.record(e(0), [e(10), e(11), e(12)], e(1));
        (vec![Some(t0), Some(t1)], exec)
    }

    fn drain(
        walk: &mut ChainWalk,
        tables: &[Option<BlockCorrelationTable>],
        exec: &ExecCorrelationTable,
        max_ahead: usize,
        max_steps: usize,
    ) -> Vec<ChainStep> {
        let mut out = Vec::new();
        for _ in 0..max_steps {
            let s = walk.step(tables, exec, max_ahead);
            let stop = matches!(s, ChainStep::Paused | ChainStep::Ended);
            out.push(s);
            if stop {
                break;
            }
        }
        out
    }

    #[test]
    fn walks_successors_then_chains_to_next_kernel() {
        let (tables, exec) = fig7();
        // Fault on block b (=2) while exec 0 runs after [10,11,12].
        let mut walk = ChainWalk::new(e(0), [e(10), e(11), e(12)], b(2));
        let steps = drain(&mut walk, &tables, &exec, 8, 32);

        // Successors of b are e and q; q is exec 0's end block, so after
        // emitting q the walk hops to exec 1 and starts at k.
        let emitted: Vec<u64> = steps
            .iter()
            .filter_map(|s| match s {
                ChainStep::Emit(cmd) => Some(cmd.block.index()),
                _ => None,
            })
            .collect();
        // Successors of b in MRU order: q (most recent), then e; both are
        // prefetched even though q is the end block.
        assert!(emitted.starts_with(&[17, 5, 11]), "emitted: {emitted:?}");
        assert!(
            steps.contains(&ChainStep::Transition {
                predicted: e(1),
                ahead: 1
            }),
            "steps: {steps:?}"
        );
        // After the hop, k then its successors g, n, then g's (t, i).
        assert!(emitted.contains(&11), "k prefetched: {emitted:?}");
        assert!(emitted.contains(&7) && emitted.contains(&14));
    }

    #[test]
    fn prediction_failure_ends_chain() {
        let (tables, exec) = fig7();
        // Unknown context: exec prediction fails at the transition.
        let mut walk = ChainWalk::new(e(0), [e(1), e(2), e(3)], b(2));
        let steps = drain(&mut walk, &tables, &exec, 8, 32);
        assert_eq!(*steps.last().unwrap(), ChainStep::Ended);
        assert!(walk.is_ended());
        assert!(!steps
            .iter()
            .any(|s| matches!(s, ChainStep::Transition { .. })));
    }

    #[test]
    fn pauses_at_look_ahead_bound_and_resumes() {
        let (tables, exec) = fig7();
        let mut walk = ChainWalk::new(e(0), [e(10), e(11), e(12)], b(2));
        // max_ahead = 0: the walk may emit within the current kernel but
        // must pause at the first transition.
        let steps = drain(&mut walk, &tables, &exec, 0, 32);
        assert_eq!(*steps.last().unwrap(), ChainStep::Paused);
        assert!(walk.is_paused());
        assert_eq!(walk.kernels_ahead(), 0);

        // The GPU finishes the kernel: window slides, walk resumes and
        // performs the transition.
        walk.on_kernel_advanced();
        let step = walk.step(&tables, &exec, 1);
        assert!(matches!(step, ChainStep::Transition { predicted, .. } if predicted == e(1)));
    }

    #[test]
    fn missing_table_ends_immediately() {
        let exec = ExecCorrelationTable::new();
        let tables: Vec<Option<BlockCorrelationTable>> = vec![None];
        let mut walk = ChainWalk::new(e(0), [e(0); 3], b(1));
        assert_eq!(walk.step(&tables, &exec, 8), ChainStep::Ended);
    }

    #[test]
    fn origin_is_never_emitted() {
        let (tables, exec) = fig7();
        let mut walk = ChainWalk::new(e(0), [e(10), e(11), e(12)], b(2));
        let steps = drain(&mut walk, &tables, &exec, 8, 64);
        assert!(steps.iter().all(|s| !matches!(
            s,
            ChainStep::Emit(cmd) if cmd.block == b(2) && cmd.exec == e(0)
        )));
    }

    #[test]
    fn fault_on_end_block_transitions_without_emitting() {
        let (tables, exec) = fig7();
        // Fault directly on q, exec 0's end block.
        let mut walk = ChainWalk::new(e(0), [e(10), e(11), e(12)], b(17));
        let first = walk.step(&tables, &exec, 8);
        assert!(matches!(first, ChainStep::Transition { predicted, .. } if predicted == e(1)));
    }

    #[test]
    fn commands_carry_predicted_exec_id() {
        let (tables, exec) = fig7();
        let mut walk = ChainWalk::new(e(0), [e(10), e(11), e(12)], b(2));
        let steps = drain(&mut walk, &tables, &exec, 8, 64);
        let k_cmd = steps
            .iter()
            .find_map(|s| match s {
                ChainStep::Emit(cmd) if cmd.block == b(11) => Some(*cmd),
                _ => None,
            })
            .expect("k prefetched");
        assert_eq!(k_cmd.exec, e(1));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn b(i: u64) -> BlockNum {
        BlockNum::new(i)
    }
    const fn e(i: u32) -> ExecId {
        ExecId(i)
    }

    /// A two-kernel ring: exec 0 walks blocks 0->1->2, exec 1 walks
    /// 10->11, and each predicts the other.
    fn ring() -> (Vec<Option<BlockCorrelationTable>>, ExecCorrelationTable) {
        let mut t0 = BlockCorrelationTable::new(64, 2, 4);
        t0.record_pair(b(0), b(1));
        t0.record_pair(b(1), b(2));
        t0.set_start(b(0));
        t0.set_end(b(2));
        let mut t1 = BlockCorrelationTable::new(64, 2, 4);
        t1.record_pair(b(10), b(11));
        t1.set_start(b(10));
        t1.set_end(b(11));
        let mut exec = ExecCorrelationTable::new();
        exec.record(e(0), [e(1), e(0), e(1)], e(1));
        exec.record(e(1), [e(0), e(1), e(0)], e(0));
        (vec![Some(t0), Some(t1)], exec)
    }

    #[test]
    fn ring_walk_is_bounded_by_max_ahead() {
        let (tables, exec) = ring();
        let mut walk = ChainWalk::new(e(0), [e(1), e(0), e(1)], b(0));
        let mut transitions = 0;
        for _ in 0..10_000 {
            match walk.step(&tables, &exec, 6) {
                ChainStep::Transition { .. } => transitions += 1,
                ChainStep::Paused => break,
                ChainStep::Ended => panic!("ring should pause, not end"),
                ChainStep::Emit(_) => {}
            }
        }
        assert_eq!(transitions, 6);
        assert_eq!(walk.kernels_ahead(), 6);
    }

    #[test]
    fn window_slide_resumes_a_paused_ring() {
        let (tables, exec) = ring();
        let mut walk = ChainWalk::new(e(0), [e(1), e(0), e(1)], b(0));
        while !matches!(walk.step(&tables, &exec, 2), ChainStep::Paused) {}
        assert!(walk.is_paused());
        walk.on_kernel_advanced();
        assert!(!walk.is_paused());
        // Progress continues: the next steps transition again.
        let mut advanced = false;
        for _ in 0..100 {
            match walk.step(&tables, &exec, 2) {
                ChainStep::Transition { .. } => {
                    advanced = true;
                    break;
                }
                ChainStep::Paused => break,
                ChainStep::Ended => panic!("ring ended"),
                ChainStep::Emit(_) => {}
            }
        }
        assert!(advanced);
    }

    #[test]
    fn steps_after_end_stay_ended() {
        let exec = ExecCorrelationTable::new();
        let tables: Vec<Option<BlockCorrelationTable>> = vec![None];
        let mut walk = ChainWalk::new(e(0), [e(0); 3], b(1));
        assert_eq!(walk.step(&tables, &exec, 4), ChainStep::Ended);
        assert_eq!(walk.step(&tables, &exec, 4), ChainStep::Ended);
        assert!(walk.is_ended());
    }

    #[test]
    fn zero_max_ahead_stays_within_current_kernel() {
        let (tables, exec) = ring();
        let mut walk = ChainWalk::new(e(0), [e(1), e(0), e(1)], b(0));
        let mut emitted = Vec::new();
        loop {
            match walk.step(&tables, &exec, 0) {
                ChainStep::Emit(cmd) => emitted.push(cmd.block.index()),
                ChainStep::Transition { .. } => panic!("must not cross kernels"),
                ChainStep::Paused | ChainStep::Ended => break,
            }
        }
        assert_eq!(emitted, vec![1, 2]);
    }
}
