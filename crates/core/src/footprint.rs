//! Learned per-block page footprints.
//!
//! DeepUM "prefetches all pages in the UM blocks correlated to the
//! faulted UM block" (Section 4.2). The driver only knows which pages a
//! block *uses* from the fault/access stream, so it accumulates a page
//! mask per block and prefetches that mask. For DNN training the
//! footprint stabilizes after the first iteration because the access
//! pattern repeats.

use std::collections::BTreeMap;

use deepum_mem::{BlockNum, PageMask};
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Map from UM block to the union of pages ever observed in use.
///
/// # Example
///
/// ```
/// use deepum_core::footprint::FootprintMap;
/// use deepum_mem::{BlockNum, PageMask};
///
/// let mut fp = FootprintMap::new();
/// fp.record(BlockNum::new(1), &PageMask::first_n(10));
/// fp.record(BlockNum::new(1), &PageMask::from_range(20..30));
/// assert_eq!(fp.get(BlockNum::new(1)).count(), 20);
/// ```
#[derive(Debug, Default, Clone)]
pub struct FootprintMap {
    map: BTreeMap<BlockNum, PageMask>,
}

impl FootprintMap {
    /// Creates an empty footprint map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges `pages` into `block`'s footprint.
    pub fn record(&mut self, block: BlockNum, pages: &PageMask) {
        self.map
            .entry(block)
            .or_insert_with(PageMask::empty)
            .union_with(pages);
    }

    /// The learned footprint of `block` (empty if never observed).
    pub fn get(&self, block: BlockNum) -> PageMask {
        self.map
            .get(&block)
            .copied()
            .unwrap_or_else(PageMask::empty)
    }

    /// Forgets a block (e.g. after its allocation is freed).
    pub fn forget(&mut self, block: BlockNum) {
        self.map.remove(&block);
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Writes the footprint map into a checkpoint payload, ascending by
    /// block (the `BTreeMap` iteration order).
    pub(crate) fn encode_into(&self, w: &mut SnapshotWriter) {
        w.u64(deepum_mem::u64_from_usize(self.map.len()));
        for (block, mask) in &self.map {
            w.block(*block);
            w.mask(mask);
        }
    }

    /// Reads a map written by [`FootprintMap::encode_into`].
    pub(crate) fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.len_prefix(72)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let block = r.block()?;
            let mask = r.mask()?;
            if map.insert(block, mask).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "{block} appears twice in the footprint map"
                )));
            }
        }
        Ok(FootprintMap { map })
    }

    /// Approximate memory footprint (Table 4 accounting).
    pub fn memory_bytes(&self) -> usize {
        core::mem::size_of::<Self>()
            + self.map.len() * (core::mem::size_of::<BlockNum>() + core::mem::size_of::<PageMask>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_unions() {
        let mut fp = FootprintMap::new();
        fp.record(BlockNum::new(0), &PageMask::first_n(5));
        fp.record(BlockNum::new(0), &PageMask::from_range(3..8));
        assert_eq!(fp.get(BlockNum::new(0)).count(), 8);
    }

    #[test]
    fn unknown_block_is_empty() {
        let fp = FootprintMap::new();
        assert!(fp.get(BlockNum::new(99)).is_empty());
    }

    #[test]
    fn forget_removes() {
        let mut fp = FootprintMap::new();
        fp.record(BlockNum::new(1), &PageMask::first_n(1));
        assert_eq!(fp.len(), 1);
        fp.forget(BlockNum::new(1));
        assert!(fp.is_empty());
    }

    #[test]
    fn memory_tracks_entries() {
        let mut fp = FootprintMap::new();
        let before = fp.memory_bytes();
        for i in 0..64 {
            fp.record(BlockNum::new(i), &PageMask::first_n(1));
        }
        assert!(fp.memory_bytes() > before);
    }
}
