//! The DeepUM runtime (user-space half of the system).
//!
//! In the paper (Section 3.1) the DeepUM runtime is an `LD_PRELOAD`
//! library that wraps the CUDA runtime:
//!
//! * every GPU memory allocation is redirected into **UM space**, which is
//!   what enables oversubscription with zero user-code changes;
//! * every kernel launch (including launches made internally by cuDNN /
//!   cuBLAS) is intercepted, hashed (kernel name + arguments) and mapped
//!   to an **execution ID** through the [`exec_table::ExecutionIdTable`];
//! * just before enqueueing the launch, a callback delivers that
//!   execution ID to the DeepUM driver through an `ioctl` — modelled here
//!   by the [`interpose::LaunchObserver`] trait, which `deepum-core`'s
//!   driver implements.

#![forbid(unsafe_code)]

pub mod exec_table;
pub mod interpose;

pub use exec_table::{ExecId, ExecutionIdTable};
pub use interpose::{CudaRuntime, LaunchObserver, NullObserver};
