//! The execution ID table.
//!
//! "The DeepUM runtime manages a table called the *execution ID table*.
//! The table holds kernel launch history and contains the hash value of
//! each kernel's name and arguments. [...] If it finds a matching
//! command, it gives the same *execution ID* to the kernel. Otherwise, it
//! assigns a new execution ID to the kernel and saves the information in
//! the table." (Section 3.1.)

use core::fmt;
use std::collections::BTreeMap;

use deepum_gpu::kernel::ExecSignature;
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use serde::{Deserialize, Serialize};

/// Identifier assigned to a (kernel name, arguments) combination.
///
/// Execution IDs are dense (0, 1, 2, ...) in first-seen order, which is
/// what lets the correlation tables in `deepum-core` index by them
/// directly.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ExecId(pub u32);

impl ExecId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ExecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exec#{}", self.0)
    }
}

/// Maps kernel signatures to execution IDs, assigning new IDs on demand.
///
/// # Example
///
/// ```
/// use deepum_gpu::kernel::ExecSignature;
/// use deepum_runtime::exec_table::ExecutionIdTable;
///
/// let mut table = ExecutionIdTable::new();
/// let sig = ExecSignature::of("gemm", &[128]);
/// let (id, new) = table.lookup_or_assign(sig);
/// assert!(new);
/// let (same, new) = table.lookup_or_assign(sig);
/// assert_eq!(id, same);
/// assert!(!new);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ExecutionIdTable {
    ids: BTreeMap<ExecSignature, ExecId>,
}

impl ExecutionIdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds the execution ID of `signature`, assigning the next dense ID
    /// if unseen. Returns `(id, was_new)`.
    pub fn lookup_or_assign(&mut self, signature: ExecSignature) -> (ExecId, bool) {
        let next = ExecId(self.ids.len() as u32);
        match self.ids.entry(signature) {
            std::collections::btree_map::Entry::Occupied(e) => (*e.get(), false),
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(next);
                (next, true)
            }
        }
    }

    /// Execution ID of `signature`, if already assigned.
    pub fn get(&self, signature: ExecSignature) -> Option<ExecId> {
        self.ids.get(&signature).copied()
    }

    /// Number of distinct execution IDs assigned so far.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no kernel has been seen yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Writes the table into a checkpoint payload as `(signature, id)`
    /// pairs, ascending by signature (the `BTreeMap` iteration order, so
    /// the encoding is deterministic).
    pub fn encode_into(&self, w: &mut SnapshotWriter) {
        w.u64(deepum_mem::u64_from_usize(self.ids.len()));
        for (sig, id) in &self.ids {
            w.u64(sig.0);
            w.u32(id.0);
        }
    }

    /// Reads a table written by [`ExecutionIdTable::encode_into`].
    ///
    /// # Errors
    ///
    /// Any decode [`SnapshotError`], or [`SnapshotError::Corrupt`] when
    /// the pairs repeat a signature or the IDs are not dense `0..len`
    /// (the invariant [`ExecutionIdTable::lookup_or_assign`] relies on to
    /// hand out the next ID).
    pub fn decode_from(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.len_prefix(12)?;
        let mut ids = BTreeMap::new();
        let mut seen_ids = vec![false; len];
        for _ in 0..len {
            let sig = ExecSignature(r.u64()?);
            let id = ExecId(r.u32()?);
            match seen_ids.get_mut(id.index()) {
                Some(slot) if !*slot => *slot = true,
                _ => {
                    return Err(SnapshotError::Corrupt(format!(
                        "exec table id {id} repeated or out of dense range 0..{len}"
                    )))
                }
            }
            if ids.insert(sig, id).is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "exec table signature {sig} appears twice"
                )));
            }
        }
        Ok(ExecutionIdTable { ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut t = ExecutionIdTable::new();
        let (a, _) = t.lookup_or_assign(ExecSignature::of("a", &[]));
        let (b, _) = t.lookup_or_assign(ExecSignature::of("b", &[]));
        let (c, _) = t.lookup_or_assign(ExecSignature::of("c", &[]));
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn repeat_launches_reuse_ids() {
        let mut t = ExecutionIdTable::new();
        let sig = ExecSignature::of("k", &[1, 2, 3]);
        let (id1, new1) = t.lookup_or_assign(sig);
        let (id2, new2) = t.lookup_or_assign(sig);
        assert_eq!(id1, id2);
        assert!(new1 && !new2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_without_assign() {
        let mut t = ExecutionIdTable::new();
        let sig = ExecSignature::of("k", &[]);
        assert_eq!(t.get(sig), None);
        let (id, _) = t.lookup_or_assign(sig);
        assert_eq!(t.get(sig), Some(id));
    }

    #[test]
    fn different_args_different_ids() {
        let mut t = ExecutionIdTable::new();
        let (a, _) = t.lookup_or_assign(ExecSignature::of("k", &[1]));
        let (b, _) = t.lookup_or_assign(ExecSignature::of("k", &[2]));
        assert_ne!(a, b);
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let mut t = ExecutionIdTable::new();
        for name in ["a", "b", "c"] {
            t.lookup_or_assign(ExecSignature::of(name, &[7]));
        }
        let mut w = SnapshotWriter::new();
        t.encode_into(&mut w);
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes).expect("valid envelope");
        let restored = ExecutionIdTable::decode_from(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(restored.len(), 3);
        for name in ["a", "b", "c"] {
            let sig = ExecSignature::of(name, &[7]);
            assert_eq!(restored.get(sig), t.get(sig));
        }
        // Restored table keeps assigning dense IDs past the snapshot.
        let mut restored = restored;
        let (next, new) = restored.lookup_or_assign(ExecSignature::of("d", &[]));
        assert!(new);
        assert_eq!(next, ExecId(3));
    }

    #[test]
    fn non_dense_ids_are_corrupt() {
        let mut w = SnapshotWriter::new();
        w.u64(2);
        w.u64(ExecSignature::of("a", &[]).0);
        w.u32(0);
        w.u64(ExecSignature::of("b", &[]).0);
        w.u32(0); // repeated ID
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).expect("valid envelope");
        assert!(matches!(
            ExecutionIdTable::decode_from(&mut r),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
