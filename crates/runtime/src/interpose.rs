//! CUDA API interposition.
//!
//! The real DeepUM runtime is loaded with `LD_PRELOAD` and wraps three
//! classes of CUDA calls; [`CudaRuntime`] models the same surface:
//!
//! * `cudaMalloc`/`cudaFree` → UM-space allocation
//!   ([`CudaRuntime::malloc_managed`], [`CudaRuntime::free_managed`]);
//! * kernel launches (direct or via cuDNN/cuBLAS) → execution-ID
//!   assignment plus the pre-launch callback that tells the driver which
//!   kernel is coming ([`CudaRuntime::launch`]);
//! * PyTorch allocator notifications → PT-block active/inactive state
//!   forwarded to the driver for the invalidation optimization
//!   ([`CudaRuntime::notify_pt_block`], Section 5.2).

use deepum_gpu::kernel::KernelLaunch;
use deepum_mem::ByteRange;
use deepum_sim::time::Ns;
use deepum_um::hints::Advice;
use deepum_um::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use deepum_um::space::{UmAllocError, UmSpace};

use crate::exec_table::{ExecId, ExecutionIdTable};

/// Receiver of runtime → driver notifications (the `ioctl` channel).
///
/// `deepum-core`'s DeepUM driver implements this; the naive UM baseline
/// uses [`NullObserver`].
pub trait LaunchObserver {
    /// A kernel with execution ID `exec` is about to be enqueued.
    /// Delivered by the CUDA callback the runtime registers just before
    /// the launch command (Section 3.1).
    fn on_kernel_launch(&mut self, now: Ns, exec: ExecId, kernel: &KernelLaunch);

    /// The PyTorch allocator changed a PT block's state; `inactive` pages
    /// may be invalidated instead of written back on eviction.
    fn on_pt_block_state(&mut self, now: Ns, range: ByteRange, inactive: bool);

    /// A cached segment was released back to the UM space (`cudaFree`):
    /// residency and learned state for `range` are stale and should be
    /// dropped. Default: ignore.
    fn on_um_range_released(&mut self, _now: Ns, _range: ByteRange) {}

    /// The application advised the driver about `range`'s access
    /// pattern (`cudaMemAdvise`). Default: ignore, so observers that
    /// predate hints (and the naive baseline) need no changes.
    fn on_mem_advise(&mut self, _now: Ns, _range: ByteRange, _advice: Advice) {}
}

/// Observer that ignores every notification (naive UM / baselines).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl LaunchObserver for NullObserver {
    fn on_kernel_launch(&mut self, _now: Ns, _exec: ExecId, _kernel: &KernelLaunch) {}
    fn on_pt_block_state(&mut self, _now: Ns, _range: ByteRange, _inactive: bool) {}
}

/// The interposed CUDA runtime: UM-space allocator + execution ID table.
///
/// # Example
///
/// ```
/// use deepum_runtime::interpose::CudaRuntime;
///
/// let mut rt = CudaRuntime::new(64 << 20);
/// let buf = rt.malloc_managed(1 << 20)?;
/// rt.free_managed(buf);
/// # Ok::<(), deepum_um::space::UmAllocError>(())
/// ```
#[derive(Debug)]
pub struct CudaRuntime {
    space: UmSpace,
    exec_table: ExecutionIdTable,
    launch_intercept_cost: Ns,
}

impl CudaRuntime {
    /// Creates a runtime whose UM space is backed by `host_capacity`
    /// bytes, with the default interception overhead.
    pub fn new(host_capacity: u64) -> Self {
        Self::with_intercept_cost(host_capacity, Ns::from_micros(2))
    }

    /// Creates a runtime with an explicit per-launch interception cost
    /// (hashing + callback + ioctl).
    pub fn with_intercept_cost(host_capacity: u64, launch_intercept_cost: Ns) -> Self {
        CudaRuntime {
            space: UmSpace::new(host_capacity),
            exec_table: ExecutionIdTable::new(),
            launch_intercept_cost,
        }
    }

    /// Creates a runtime whose UM space starts allocating at `va_base`
    /// (block-aligned) instead of address zero. Multi-tenant runs give
    /// each tenant a disjoint VA region of the shared driver's address
    /// space, so block numbers never collide across tenants.
    pub fn with_va_base(host_capacity: u64, va_base: u64, launch_intercept_cost: Ns) -> Self {
        CudaRuntime {
            space: UmSpace::with_base(host_capacity, va_base),
            exec_table: ExecutionIdTable::new(),
            launch_intercept_cost,
        }
    }

    /// Allocates managed (UM) memory.
    ///
    /// # Errors
    ///
    /// Propagates [`UmAllocError`] when the backing store is exhausted —
    /// the condition that bounds DeepUM's maximum batch size (Table 3).
    pub fn malloc_managed(&mut self, bytes: u64) -> Result<ByteRange, UmAllocError> {
        self.space.alloc(bytes)
    }

    /// Frees managed memory.
    ///
    /// # Panics
    ///
    /// Panics on double free (as the CUDA runtime would abort).
    pub fn free_managed(&mut self, range: ByteRange) {
        self.space.free(range);
    }

    /// Intercepts a kernel launch: assigns its execution ID, notifies the
    /// observer (the driver), and returns `(exec_id, interception_cost)`.
    /// The caller charges the cost to the launching CPU thread's
    /// timeline.
    pub fn launch<O: LaunchObserver + ?Sized>(
        &mut self,
        now: Ns,
        kernel: &KernelLaunch,
        observer: &mut O,
    ) -> (ExecId, Ns) {
        let (exec, _new) = self.exec_table.lookup_or_assign(kernel.signature);
        observer.on_kernel_launch(now, exec, kernel);
        (exec, self.launch_intercept_cost)
    }

    /// Forwards a PT-block state change from the PyTorch allocator to the
    /// driver (Section 5.2's "few lines of code" in the allocator).
    pub fn notify_pt_block<O: LaunchObserver + ?Sized>(
        &mut self,
        now: Ns,
        range: ByteRange,
        inactive: bool,
        observer: &mut O,
    ) {
        observer.on_pt_block_state(now, range, inactive);
    }

    /// Forwards a `cudaMemAdvise` call to the driver. The runtime
    /// itself keeps no hint state — advice is driver policy, so a
    /// restore never has to reconcile it.
    pub fn mem_advise<O: LaunchObserver + ?Sized>(
        &mut self,
        now: Ns,
        range: ByteRange,
        advice: Advice,
        observer: &mut O,
    ) {
        observer.on_mem_advise(now, range, advice);
    }

    /// The execution ID table (for table-size accounting, Table 4).
    pub fn exec_table(&self) -> &ExecutionIdTable {
        &self.exec_table
    }

    /// The UM space (for allocation accounting).
    pub fn space(&self) -> &UmSpace {
        &self.space
    }

    /// Serializes the runtime's recoverable state — the UM space and the
    /// execution ID table — into one snapshot envelope (DESIGN.md §11).
    /// `launch_intercept_cost` is configuration, not state, and is not
    /// written.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.space.encode_into(&mut w);
        self.exec_table.encode_into(&mut w);
        w.finish()
    }

    /// Restores state written by [`CudaRuntime::snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] from envelope validation or payload decode;
    /// on error the runtime is left unchanged.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let space = UmSpace::decode_from(&mut r)?;
        let exec_table = ExecutionIdTable::decode_from(&mut r)?;
        r.finish()?;
        self.space = space;
        self.exec_table = exec_table;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepum_gpu::kernel::KernelLaunch;

    #[derive(Default)]
    struct Recorder {
        launches: Vec<ExecId>,
        pt_events: Vec<bool>,
        advice: Vec<Advice>,
    }

    impl LaunchObserver for Recorder {
        fn on_kernel_launch(&mut self, _now: Ns, exec: ExecId, _k: &KernelLaunch) {
            self.launches.push(exec);
        }
        fn on_pt_block_state(&mut self, _now: Ns, _range: ByteRange, inactive: bool) {
            self.pt_events.push(inactive);
        }
        fn on_mem_advise(&mut self, _now: Ns, _range: ByteRange, advice: Advice) {
            self.advice.push(advice);
        }
    }

    fn kernel(name: &str) -> KernelLaunch {
        KernelLaunch::new(name, &[], vec![], Ns::from_micros(1))
    }

    #[test]
    fn launch_assigns_stable_exec_ids() {
        let mut rt = CudaRuntime::new(1 << 30);
        let mut obs = Recorder::default();
        let (a, cost) = rt.launch(Ns::ZERO, &kernel("k1"), &mut obs);
        let (b, _) = rt.launch(Ns::ZERO, &kernel("k2"), &mut obs);
        let (a2, _) = rt.launch(Ns::ZERO, &kernel("k1"), &mut obs);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert!(cost > Ns::ZERO);
        assert_eq!(obs.launches, vec![a, b, a]);
        assert_eq!(rt.exec_table().len(), 2);
    }

    #[test]
    fn pt_block_notifications_reach_observer() {
        let mut rt = CudaRuntime::new(1 << 30);
        let mut obs = Recorder::default();
        let buf = rt.malloc_managed(1 << 20).unwrap();
        rt.notify_pt_block(Ns::ZERO, buf, true, &mut obs);
        rt.notify_pt_block(Ns::ZERO, buf, false, &mut obs);
        assert_eq!(obs.pt_events, vec![true, false]);
    }

    #[test]
    fn mem_advise_reaches_observer() {
        let mut rt = CudaRuntime::new(1 << 30);
        let mut obs = Recorder::default();
        let buf = rt.malloc_managed(1 << 20).unwrap();
        rt.mem_advise(Ns::ZERO, buf, Advice::ReadMostly, &mut obs);
        rt.mem_advise(Ns::ZERO, buf, Advice::AccessedBy, &mut obs);
        assert_eq!(obs.advice, vec![Advice::ReadMostly, Advice::AccessedBy]);
        // The default impl ignores advice — the naive baseline compiles
        // and behaves exactly as before.
        let mut null = NullObserver;
        rt.mem_advise(Ns::ZERO, buf, Advice::PreferredLocation, &mut null);
    }

    #[test]
    fn alloc_free_round_trip() {
        let mut rt = CudaRuntime::new(1 << 20);
        let buf = rt.malloc_managed(4096).unwrap();
        assert_eq!(rt.space().allocated_bytes(), 4096);
        rt.free_managed(buf);
        assert_eq!(rt.space().allocated_bytes(), 0);
    }

    #[test]
    fn oom_surfaces() {
        let mut rt = CudaRuntime::new(4096);
        assert!(rt.malloc_managed(8192).is_err());
    }

    #[test]
    fn snapshot_restores_space_and_exec_table() {
        let mut rt = CudaRuntime::new(1 << 24);
        let mut obs = NullObserver;
        let keep = rt.malloc_managed(1 << 20).unwrap();
        let drop_me = rt.malloc_managed(1 << 16).unwrap();
        rt.launch(Ns::ZERO, &kernel("k1"), &mut obs);
        rt.launch(Ns::ZERO, &kernel("k2"), &mut obs);
        let bytes = rt.snapshot();

        // Diverge, then restore.
        rt.free_managed(drop_me);
        rt.launch(Ns::ZERO, &kernel("k3"), &mut obs);
        rt.restore(&bytes).expect("restore succeeds");

        assert_eq!(rt.space().allocated_bytes(), (1 << 20) + (1 << 16));
        assert_eq!(rt.exec_table().len(), 2);
        let _ = keep;
        // Re-snapshot of restored state is byte-identical.
        assert_eq!(rt.snapshot(), bytes);
        // The restored space rejects a double free of the restored range
        // only after it is actually freed again.
        rt.free_managed(drop_me);
        assert_eq!(rt.space().allocated_bytes(), 1 << 20);
    }

    #[test]
    fn restore_rejects_corrupt_envelope() {
        let mut rt = CudaRuntime::new(1 << 20);
        let mut bytes = rt.snapshot();
        if let Some(b) = bytes.last_mut() {
            *b ^= 1;
        }
        assert!(rt.restore(&bytes).is_err());
    }

    #[test]
    fn null_observer_ignores_everything() {
        let mut rt = CudaRuntime::new(1 << 20);
        let mut obs = NullObserver;
        let (exec, _) = rt.launch(Ns::ZERO, &kernel("k"), &mut obs);
        assert_eq!(exec, ExecId(0));
    }
}
