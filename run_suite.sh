#!/bin/bash
# Regenerates the paper artifacts. Cheap experiments first; the shared
# run cache under results/cache lets later binaries reuse earlier runs.
# Heavy sensitivity sweeps (Figs 10-12) run restricted passes first so
# partial results land early; the unrestricted passes follow.
set -x
cd "$(dirname "$0")"
B="cargo run -q --release -p deepum-bench --bin"
$B table08_qualitative 2>&1
$B fig09_speedup -- --iters 2 2>&1
$B table05_faults -- --iters 2 2>&1
$B table04_table_size -- --iters 2 2>&1
$B table03_max_batch 2>&1
$B fig13_tf_compare -- --iters 2 2>&1
$B table07_tf_max_batch 2>&1
$B fig10_ablation -- --iters 2 --only bert-large 2>&1
$B fig10_ablation -- --iters 2 --only gpt2 2>&1
$B fig10_ablation -- --iters 2 2>&1
$B fig11_degree -- --iters 2 --only gpt2-l 2>&1
$B fig11_degree -- --iters 2 2>&1
$B fig12_table_params -- --iters 2 --only bert-large 2>&1
$B fig12_table_params -- --iters 2 2>&1
echo SUITE-COMPLETE
