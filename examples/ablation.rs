//! Reproduce the paper's Figure-10 ablation on a small workload: how
//! much of DeepUM's win comes from correlation prefetching, how much
//! from page pre-eviction, and how much from invalidating inactive
//! PyTorch blocks.
//!
//! Run with: `cargo run --release --example ablation`

use deepum::core::config::DeepumConfig;
use deepum::torch::models::ModelKind;
use deepum::{Session, SystemKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(ModelKind::MobileNet, 64)
        .iterations(4)
        .device_memory(64 << 20)
        .host_memory(8 << 30);

    let um = session.run(SystemKind::Um)?;
    let base = um.steady_iter_time().as_nanos() as f64;
    println!("naive UM iteration time: {}\n", um.steady_iter_time());

    let degree = 16; // modest look-ahead suits this small kernel stream
    let steps: [(&str, DeepumConfig); 3] = [
        (
            "prefetching only",
            DeepumConfig::prefetch_only().with_prefetch_degree(degree),
        ),
        (
            "+ pre-eviction",
            DeepumConfig::prefetch_preevict().with_prefetch_degree(degree),
        ),
        (
            "+ invalidation",
            DeepumConfig::default().with_prefetch_degree(degree),
        ),
    ];

    println!(
        "{:<20} {:>12} {:>18} {:>14}",
        "configuration", "iter time", "normalized to UM", "faults/iter"
    );
    for (name, cfg) in steps {
        let r = session.run_configured(cfg)?;
        println!(
            "{:<20} {:>12} {:>17.3} {:>14}",
            name,
            r.steady_iter_time().to_string(),
            r.steady_iter_time().as_nanos() as f64 / base,
            r.steady_faults_per_iter(),
        );
    }
    println!("\n(lower is better; the paper reports mean reductions of 45.6%,\n 63.7% and 66.7% across its seven full-scale models)");
    Ok(())
}
