//! Compare every memory system in the repository on one oversubscribed
//! workload: naive UM, DeepUM, IBM LMS (+mod), vDNN, AutoTM,
//! SwapAdvisor, Capuchin, Sentinel, and the Ideal bound.
//!
//! Run with: `cargo run --release --example compare_systems`

use deepum::torch::models::ModelKind;
use deepum::{Session, SystemKind};

fn main() {
    let session = Session::new(ModelKind::MobileNet, 64)
        .iterations(3)
        .device_memory(64 << 20)
        .host_memory(8 << 30);

    let w = session.workload();
    println!(
        "model {} — peak {} MiB vs {} MiB device ({}x oversubscribed)\n",
        w.name,
        w.peak_bytes() >> 20,
        64,
        w.peak_bytes() / (64 << 20)
    );

    let um = session.run(SystemKind::Um).expect("naive UM runs");
    println!(
        "{:<12} {:>12} {:>9} {:>14} {:>12}",
        "system", "iter time", "speedup", "faults/iter", "energy (J)"
    );
    let all = [
        SystemKind::Um,
        SystemKind::DeepUm,
        SystemKind::Lms,
        SystemKind::LmsMod,
        SystemKind::Vdnn,
        SystemKind::AutoTm,
        SystemKind::SwapAdvisor,
        SystemKind::Capuchin,
        SystemKind::Sentinel,
        SystemKind::Ideal,
    ];
    for kind in all {
        match session.run(kind) {
            Ok(r) => println!(
                "{:<12} {:>12} {:>8.2}x {:>14} {:>12.1}",
                r.system,
                r.steady_iter_time().to_string(),
                r.speedup_over(&um),
                r.steady_faults_per_iter(),
                r.energy_joules,
            ),
            Err(e) => println!("{:<12} {e}", format!("{kind:?}").to_lowercase()),
        }
    }
    println!("\n(page faults are zero for the tensor-swapping systems: they pin\n operands on device before each kernel instead of faulting.)");
}
