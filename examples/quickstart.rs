//! Quickstart: oversubscribe GPU memory and watch DeepUM hide the cost.
//!
//! Trains MobileNet with device memory set to ~40% of the working set,
//! under three memory systems: naive CUDA UM (fault-and-migrate),
//! DeepUM (correlation prefetching + pre-eviction + invalidation), and
//! the no-oversubscription Ideal bound.
//!
//! Run with: `cargo run --example quickstart`

use deepum::core::config::DeepumConfig;
use deepum::torch::models::ModelKind;
use deepum::{Session, SystemKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(ModelKind::MobileNet, 48)
        .iterations(4)
        .device_memory(48 << 20) // 48 MiB device vs ~115 MiB working set
        .host_memory(8 << 30);

    let workload = session.workload();
    println!(
        "workload: {} — {} kernels/iteration, peak footprint {} MiB\n",
        workload.name,
        workload.kernel_count(),
        workload.peak_bytes() >> 20
    );

    let um = session.run(SystemKind::Um)?;
    // The default look-ahead targets full-scale models (hundreds of
    // kernels per iteration); this small stream wants a shorter one.
    let deepum = session.run_configured(DeepumConfig::default().with_prefetch_degree(16))?;
    let ideal = session.run(SystemKind::Ideal)?;

    println!(
        "{:<8} {:>14} {:>16} {:>12}",
        "system", "iter time", "page faults/iter", "speedup"
    );
    for r in [&um, &deepum, &ideal] {
        println!(
            "{:<8} {:>14} {:>16} {:>11.2}x",
            r.system,
            r.steady_iter_time().to_string(),
            r.steady_faults_per_iter(),
            r.speedup_over(&um),
        );
    }

    let c = deepum.counters;
    println!(
        "\nDeepUM moved {} pages by prefetch ({} hit before eviction),\n\
         pre-evicted {} pages off the fault path and invalidated {} pages\n\
         of inactive PyTorch blocks (no write-back needed).",
        c.pages_prefetched, c.prefetch_hits, c.pages_preevicted, c.pages_invalidated
    );
    Ok(())
}
