//! PyTorch caching-allocator walkthrough (paper Section 5.2).
//!
//! Shows the allocator behaviours DeepUM's invalidation optimization
//! depends on: pool selection, size rounding, block splitting, best-fit
//! reuse, coalescing, the OOM cache flush — and the active/inactive
//! notifications that tell the driver which pages can be dropped without
//! write-back.
//!
//! Run with: `cargo run --example allocator_demo`

use deepum::torch::alloc::{CachingAllocator, PtEvent};
use deepum::um::space::UmSpace;

fn show(events: &mut Vec<PtEvent>) {
    for e in events.drain(..) {
        match e {
            PtEvent::Active(r) => println!("    -> driver: range {r} ACTIVE (clear invalidatable)"),
            PtEvent::Inactive(r) => println!("    -> driver: range {r} INACTIVE (evict = drop)"),
            PtEvent::Released(r) => println!("    -> driver: range {r} RELEASED (cudaFree)"),
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut source = UmSpace::new(128 << 20);
    let mut alloc = CachingAllocator::new();
    let mut ev = Vec::new();

    println!("1) small allocation (100 KiB): rounds to 512 B multiples, 2 MiB segment");
    let (small, r) = alloc.alloc(100 << 10, &mut source, &mut ev)?;
    println!("    got {} KiB at {r}", r.len() >> 10);
    show(&mut ev);
    println!(
        "    reserved {} MiB (cached {} MiB)\n",
        alloc.reserved_bytes() >> 20,
        alloc.cached_bytes() >> 20
    );

    println!("2) mid-size allocation (6 MiB): served from a 20 MiB segment, split");
    let (mid, r) = alloc.alloc(6 << 20, &mut source, &mut ev)?;
    println!("    got {} MiB at {r}", r.len() >> 20);
    show(&mut ev);
    println!("    inactive blocks cached: {}\n", alloc.inactive_blocks());

    println!("3) free + realloc: best-fit reuses the cached remainder");
    alloc.free(mid, &mut ev);
    show(&mut ev);
    let (mid2, r2) = alloc.alloc(5 << 20, &mut source, &mut ev)?;
    println!("    5 MiB request landed at {r2} (same segment)");
    show(&mut ev);

    println!("\n4) coalescing: free everything, the 20 MiB segment reassembles");
    alloc.free(mid2, &mut ev);
    alloc.free(small, &mut ev);
    ev.clear();
    println!(
        "    inactive blocks: {} (one per segment)",
        alloc.inactive_blocks()
    );

    println!("\n5) OOM recovery: a 120 MiB request forces a cache flush first");
    let (big, r) = alloc.alloc(120 << 20, &mut source, &mut ev)?;
    println!("    got {} MiB at {r}", r.len() >> 20);
    show(&mut ev);
    alloc.free(big, &mut ev);
    ev.clear();

    println!(
        "\nfinal: reserved {} MiB, active {} MiB",
        alloc.reserved_bytes() >> 20,
        alloc.active_bytes() >> 20
    );
    Ok(())
}
