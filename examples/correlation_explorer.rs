//! Correlation-table explorer: watch DeepUM learn a training loop.
//!
//! Builds a tiny hand-written "model" with an obvious repeating pattern,
//! trains it for a few iterations under DeepUM, and dumps what the
//! correlation machinery learned: the execution-ID records (paper
//! Fig. 6), each kernel's UM-block table with its start/end anchors
//! (Fig. 7), and the resulting next-kernel prediction accuracy.
//!
//! Run with: `cargo run --example correlation_explorer`

use deepum::baselines::executor::um::{run_um, UmRunConfig};
use deepum::core::config::DeepumConfig;
use deepum::core::driver::DeepumDriver;
use deepum::runtime::exec_table::ExecId;
use deepum::sim::costs::CostModel;
use deepum::torch::step::{Workload, WorkloadBuilder};

/// Three kernels in a loop; each reads the previous one's output plus a
/// weight matrix — a miniature of a DNN layer pipeline.
fn toy_model() -> Workload {
    let mut b = WorkloadBuilder::new("toy-pipeline/b1", "toy-pipeline", 1);
    let w: Vec<_> = (0..3).map(|_| b.persistent(24 << 20)).collect();
    let mut x = b.alloc(16 << 20);
    b.kernel("load").writes(&[x]).flops(1e6).launch();
    for (i, &wi) in w.iter().enumerate() {
        let y = b.alloc(16 << 20);
        b.kernel(format!("layer{i}"))
            .reads(&[x, wi])
            .writes(&[y])
            .flops(5e9)
            .launch();
        b.free(x);
        x = y;
    }
    b.free(x);
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = toy_model();
    // Device holds only half the ~140 MiB working set, so blocks cycle.
    let costs = CostModel::v100_32gb()
        .with_device_memory(64 << 20)
        .with_host_memory(1 << 30);
    let cfg = UmRunConfig {
        costs: costs.clone(),
        seed: 7,
        ..UmRunConfig::new(5)
    };
    let mut driver = DeepumDriver::new(costs, DeepumConfig::default().with_prefetch_degree(2));
    let report = run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters())?;

    println!("=== execution-ID correlation table (Fig. 6) ===");
    let exec_corr = driver.exec_correlation();
    for id in 0..driver.block_table_count() as u32 {
        let records = exec_corr.records_of(ExecId(id));
        if records.is_empty() {
            continue;
        }
        print!("exec#{id}: ");
        for r in records {
            let ctx: Vec<String> = r
                .prev
                .iter()
                .map(|e| {
                    if e.0 == u32::MAX {
                        "-".into()
                    } else {
                        e.0.to_string()
                    }
                })
                .collect();
            print!("({}, next={})  ", ctx.join(","), r.next.0);
        }
        println!();
    }

    println!("\n=== UM-block correlation tables (Fig. 7) ===");
    for id in 0..driver.block_table_count() as u32 {
        let Some(table) = driver.block_table(ExecId(id)) else {
            continue;
        };
        let (rows, assoc, succs) = table.geometry();
        println!(
            "exec#{id}: geometry {rows}x{assoc}way x{succs}succ, start={:?}, end={:?}, {} ways used",
            table.start().map(|b| b.index()),
            table.end().map(|b| b.index()),
            table.occupied_ways()
        );
        if let Some(start) = table.start() {
            let succ: Vec<u64> = table.successors(start).iter().map(|b| b.index()).collect();
            println!("    successors(start) = {succ:?}");
        }
    }

    let c = report.counters;
    println!("\n=== outcome over {} iterations ===", report.iters.len());
    println!(
        "next-kernel predictions: {} ({} wrong)",
        c.exec_predictions, c.exec_mispredictions
    );
    println!(
        "pages prefetched: {} (hits {})",
        c.pages_prefetched, c.prefetch_hits
    );
    for (i, it) in report.iters.iter().enumerate() {
        println!(
            "iteration {i}: {} elapsed, {} faults",
            it.elapsed, it.counters.gpu_page_faults
        );
    }
    println!(
        "\ncorrelation state memory: {} KiB (Table 4 accounting)",
        driver.table_memory_bytes() >> 10
    );
    Ok(())
}
