//! Multi-tenant scheduler integration tests: the tenant-isolation
//! differential, admission-control liveness, and property-based
//! oversubscribed schedules.

use deepum::baselines::report::RunError;
use deepum::mem::PAGE_SIZE;
use deepum::sched::{seeded_arrivals, JobKind, MultiTenant, TenantSpec};
use deepum::sim::costs::CostModel;
use deepum::sim::time::Ns;
use deepum::torch::models::ModelKind;
use deepum::torch::perf::PerfModel;
use deepum::InjectionPlan;
use proptest::prelude::*;

fn pages(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE as u64)
}

fn platform(device_pages: u64) -> CostModel {
    CostModel::v100_32gb()
        .with_device_memory(device_pages * PAGE_SIZE as u64)
        .with_host_memory(8 << 30)
}

fn training(name: &str, batch: usize, iterations: usize) -> TenantSpec {
    TenantSpec::new(
        name,
        JobKind::Training {
            model: ModelKind::MobileNet,
            batch,
            iterations,
        },
    )
}

/// A chaos plan throwing everything at its tenant: transient DMA
/// failures, fault storms, ECC poisoning of correlation state, and a
/// scheduled hard device reset (which exercises the tenant-scoped
/// checkpoint/restore path).
fn storm_plan() -> InjectionPlan {
    InjectionPlan {
        seed: 0xA11CE,
        dma_h2d_fail_rate: 0.05,
        dma_d2h_fail_rate: 0.05,
        storm_rate: 0.10,
        ecc_rate: 0.02,
        device_reset_at: vec![10],
        ..InjectionPlan::default()
    }
}

/// **The tenant-isolation differential.** Tenant B (the bystander) runs
/// within its guaranteed floor while tenant A suffers a fault storm,
/// ECC poisoning, and a hard device reset with tenant-scoped
/// checkpoint/restore. B's structured-event trace must be byte-for-byte
/// identical to a solo run of B through the same scheduler — B must be
/// unable to tell whether A exists.
///
/// B sits at spec position 0 in both runs so it gets the same tenant id
/// (and therefore the same virtual-address base) both times.
#[test]
fn tenant_fault_storm_never_perturbs_a_bystander() {
    let b_peak = pages(ModelKind::MobileNet.build(4).peak_bytes());
    let b_floor = b_peak + 1024;
    // Room for B's whole floor plus roughly a third of A's working set:
    // A runs heavily oversubscribed and must evict constantly.
    let a_peak = pages(ModelKind::MobileNet.build(16).peak_bytes());
    let costs = platform(b_floor + a_peak / 3);

    let bystander = || training("bystander", 4, 2).floor_pages(b_floor).traced();
    let noisy = || training("noisy", 16, 2).plan(storm_plan());

    let solo = MultiTenant::new(costs.clone(), PerfModel::v100())
        .tenant(bystander())
        .run();
    let duo = MultiTenant::new(costs, PerfModel::v100())
        .tenant(bystander())
        .tenant(noisy())
        .run();

    solo.validation.clone().expect("solo invariants hold");
    duo.validation.clone().expect("duo invariants hold");
    assert!(solo.errors.is_empty(), "solo errors: {:?}", solo.errors);
    assert!(duo.errors.is_empty(), "duo errors: {:?}", duo.errors);

    let duo_tenants = duo.report.tenants.as_deref().expect("tenant section");
    assert!(
        duo_tenants.iter().all(|t| t.admitted && t.completed),
        "both tenants drain despite the storm: {duo_tenants:?}"
    );
    // The noisy tenant, not the bystander, pays for the evictions its
    // oversubscription forces.
    assert_eq!(duo_tenants[0].evictions_charged, 0, "bystander charged");
    assert!(
        duo_tenants[1].pages_evicted > 0,
        "noisy tenant never evicted — the device is not oversubscribed"
    );

    let solo_trace = solo
        .tracers
        .iter()
        .find(|(tid, _)| *tid == 0)
        .map(|(_, tr)| tr.borrow_mut().jsonl())
        .expect("bystander tracer (solo)");
    let duo_trace = duo
        .tracers
        .iter()
        .find(|(tid, _)| *tid == 0)
        .map(|(_, tr)| tr.borrow_mut().jsonl())
        .expect("bystander tracer (duo)");
    assert!(
        solo_trace.contains("KernelEnd"),
        "bystander trace is non-trivial"
    );
    assert_eq!(
        solo_trace, duo_trace,
        "bystander trace diverged from its solo run"
    );
}

/// **Admission-control liveness.** A late tenant whose guaranteed floor
/// cannot be met is refused with the typed error — and the refusal is
/// the co-tenant's fault, not the job's: the identical spec admitted
/// solo runs to completion. Meanwhile the admitted tenant is never
/// disturbed by the denial.
#[test]
fn admission_denied_is_typed_and_admitted_tenants_drain() {
    // 16384-page device; the greedy tenant reserves 15000 of it.
    let costs = platform(16_384);
    let late = || training("late", 4, 1).floor_pages(3_000).arrival(1);

    let duo = MultiTenant::new(costs.clone(), PerfModel::v100())
        .tenant(training("greedy", 4, 2).floor_pages(15_000))
        .tenant(late())
        .run();

    assert_eq!(duo.errors.len(), 1);
    match &duo.errors[0] {
        (
            1,
            RunError::AdmissionDenied {
                tenant,
                need,
                avail,
            },
        ) => {
            assert_eq!(*tenant, 1);
            assert_eq!(*need, 3_000);
            assert_eq!(*avail, 16_384 - 15_000);
        }
        other => panic!("expected tenant 1 AdmissionDenied, got {other:?}"),
    }
    let tenants = duo.report.tenants.as_deref().expect("tenant section");
    assert!(tenants[0].admitted && tenants[0].completed, "{tenants:?}");
    assert!(tenants[0].kernels > 0);
    assert!(!tenants[1].admitted && !tenants[1].completed);
    assert_eq!(tenants[1].kernels, 0, "denied tenant ran a kernel");
    assert_eq!(tenants[1].elapsed, Ns::ZERO);
    duo.validation.clone().expect("invariants hold");

    // Solo control: the same floor is satisfiable on an empty device.
    let solo = MultiTenant::new(costs, PerfModel::v100())
        .tenant(late())
        .run();
    assert!(solo.errors.is_empty(), "solo errors: {:?}", solo.errors);
    let solo_tenants = solo.report.tenants.as_deref().expect("tenant section");
    assert!(solo_tenants[0].admitted && solo_tenants[0].completed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded mix of arrivals, priorities, and 1.5x–3x
    /// oversubscription drains with the shared driver's invariants
    /// intact, every tenant admitted and completed, and the whole
    /// outcome byte-identical across a double run.
    #[test]
    fn oversubscribed_schedules_drain_clean_and_deterministically(
        seed in 0u64..1_000,
        spread in 1u64..4,
        prio_a in 1u32..4,
        prio_b in 1u32..4,
        oversub_pct in 150u64..300,
    ) {
        let peak = pages(ModelKind::MobileNet.build(4).peak_bytes());
        // Three tenants of combined peak 3*peak on a device sized so
        // the ratio (3*peak / device) is oversub_pct percent.
        let device_pages = (3 * peak * 100) / oversub_pct;
        let costs = platform(device_pages);
        let arrivals = seeded_arrivals(seed, 3, spread);

        let build = || MultiTenant::new(costs.clone(), PerfModel::v100())
            .tenant(
                training("a", 4, 2)
                    .priority(prio_a)
                    .arrival(arrivals[0])
                    .seed(seed),
            )
            .tenant(
                training("b", 4, 2)
                    .priority(prio_b)
                    .arrival(arrivals[1])
                    .seed(seed ^ 0xFF),
            )
            .tenant(
                TenantSpec::new(
                    "c",
                    JobKind::Inference { model: ModelKind::MobileNet, batch: 2, requests: 2 },
                )
                .arrival(arrivals[2]),
            )
            .run();

        let first = build();
        prop_assert!(
            first.validation.is_ok(),
            "invariants violated: {:?}",
            first.validation
        );
        prop_assert!(first.errors.is_empty(), "errors: {:?}", first.errors);
        let tenants = first.report.tenants.as_deref().unwrap_or_default();
        prop_assert_eq!(tenants.len(), 3);
        for t in tenants {
            prop_assert!(t.admitted && t.completed, "tenant {:?}", t);
            prop_assert!(t.kernels > 0);
        }

        let second = build();
        let ja = serde_json::to_string(&first.report).ok();
        let jb = serde_json::to_string(&second.report).ok();
        prop_assert!(ja.is_some(), "report serializes");
        prop_assert_eq!(ja, jb, "double run diverged");
    }
}
