//! Chaos-injection robustness across the stack: an empty plan changes
//! nothing, a seeded plan reproduces byte-identically, random fault
//! storms never corrupt the UM driver's bookkeeping, and the health
//! report surfaces what was injected.

use deepum::baselines::executor::um::{run_um, UmRunConfig};
use deepum::core::config::DeepumConfig;
use deepum::core::driver::DeepumDriver;
use deepum::gpu::engine::UmBackend as _;
use deepum::sim::costs::CostModel;
use deepum::torch::models::ModelKind;
use deepum::{InjectionPlan, Session, SystemKind};
use proptest::prelude::*;

/// Moderate rates on every fault class at once.
fn chaos_plan(seed: u64) -> InjectionPlan {
    InjectionPlan {
        seed,
        dma_h2d_fail_rate: 0.05,
        dma_d2h_fail_rate: 0.05,
        host_oom_rate: 0.02,
        storm_rate: 0.01,
        corr_drop_rate: 0.10,
        launch_delay_rate: 0.05,
        ..InjectionPlan::default()
    }
}

/// An oversubscribed session: device holds ~half the working set, so
/// migration, eviction, and prefetching all run hot.
fn small() -> Session {
    Session::new(ModelKind::MobileNet, 48)
        .iterations(2)
        .device_memory(80 << 20)
        .host_memory(8 << 30)
}

#[test]
fn empty_plan_is_bit_identical_to_no_plan() {
    let base = small().run(SystemKind::DeepUm).unwrap();
    let explicit = small()
        .injection_plan(InjectionPlan::default())
        .run(SystemKind::DeepUm)
        .unwrap();
    assert!(base.health.is_none(), "no plan => no health section");
    assert_eq!(base, explicit);
    assert_eq!(
        serde_json::to_string(&base).unwrap(),
        serde_json::to_string(&explicit).unwrap()
    );
}

#[test]
fn clean_seeded_runs_reproduce_byte_identically() {
    // No fault plan at all: two fresh sessions over the same seed must
    // produce byte-identical reports. Guards the determinism contract
    // (DESIGN.md §10) that deepum-tidy's container/wallclock lints
    // enforce statically.
    let a = small().run(SystemKind::DeepUm).unwrap();
    let b = small().run(SystemKind::DeepUm).unwrap();
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn seeded_chaos_reproduces_byte_identically() {
    let run = || {
        small()
            .injection_plan(chaos_plan(99))
            .run(SystemKind::DeepUm)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
    let h = a.health.as_ref().expect("non-empty plan => health section");
    assert!(
        h.injected.dma_h2d_failures
            + h.injected.dma_d2h_failures
            + h.injected.corr_records_dropped
            + h.injected.launch_delays
            > 0,
        "chaos rates this high must inject something: {h:?}"
    );
}

#[test]
fn chaos_never_breaks_the_run() {
    let clean = small().run(SystemKind::DeepUm).unwrap();
    let chaotic = small()
        .injection_plan(chaos_plan(7))
        .run(SystemKind::DeepUm)
        .unwrap();
    // The same computation happened under fire: every kernel launched,
    // every iteration completed. (Total time is *not* monotone in the
    // fault rates — dropped correlation records can shrink wasted
    // prefetch traffic — so only completion is asserted.)
    assert_eq!(
        clean.counters.kernels_launched,
        chaotic.counters.kernels_launched
    );
    assert_eq!(clean.iters.len(), chaotic.iters.len());
    assert!(chaotic.health.is_some());
}

#[test]
fn naive_um_takes_chaos_too() {
    let r = small()
        .injection_plan(chaos_plan(3))
        .run(SystemKind::Um)
        .unwrap();
    let h = r.health.expect("plan installed => health reported");
    assert!(h.injected.migration_retries > 0);
}

#[test]
fn watchdog_survives_chaos_and_reports_state() {
    let cfg = DeepumConfig::default().with_watchdog(4, 25, 60, 8);
    let r = small()
        .injection_plan(InjectionPlan {
            seed: 11,
            corr_drop_rate: 0.5,
            dma_h2d_fail_rate: 0.1,
            ..InjectionPlan::default()
        })
        .run_configured(cfg)
        .unwrap();
    assert!(r.health.is_some());
}

/// Drops the recovery section so a recovered run can be compared
/// byte-for-byte against an uninterrupted one.
fn strip_recovery(
    mut r: deepum::baselines::report::RunReport,
) -> deepum::baselines::report::RunReport {
    r.recovery = None;
    r
}

#[test]
fn device_reset_recovery_matches_uninterrupted_run() {
    for kind in [SystemKind::DeepUm, SystemKind::Um] {
        let clean = small().run(kind).unwrap();
        let interrupted = small()
            .injection_plan(InjectionPlan {
                device_reset_at: vec![3, 41],
                ..InjectionPlan::default()
            })
            .run(kind)
            .unwrap();
        let rec = interrupted
            .recovery
            .expect("hard-fault plan => recovery section");
        assert_eq!(rec.restores, 2, "both scheduled resets fire once");
        assert!(rec.checkpoints > 0);
        assert!(rec.downtime_ns > 0, "resets cost downtime");
        assert_eq!(rec.ecc_poisonings, 0);
        // The acceptance bar: final residency, allocator state, and
        // metrics identical to the uninterrupted run, byte-for-byte,
        // modulo the recovery section.
        assert_eq!(
            serde_json::to_string(&clean).unwrap(),
            serde_json::to_string(&strip_recovery(interrupted)).unwrap(),
            "{kind:?} reset-interrupted run must converge to the uninterrupted one"
        );
    }
}

#[test]
fn driver_crash_mid_drain_recovers() {
    let clean = small().run(SystemKind::DeepUm).unwrap();
    let crashed = small()
        .injection_plan(InjectionPlan {
            driver_crash_at: vec![2, 17],
            ..InjectionPlan::default()
        })
        .run(SystemKind::DeepUm)
        .unwrap();
    let rec = crashed
        .recovery
        .expect("hard-fault plan => recovery section");
    assert_eq!(rec.restores, 2);
    assert!(
        rec.replay_kernels > 0,
        "a mid-drain crash replays journaled work"
    );
    assert_eq!(
        serde_json::to_string(&clean).unwrap(),
        serde_json::to_string(&strip_recovery(crashed)).unwrap()
    );
}

#[test]
fn governed_crash_recovery_matches_uninterrupted_run() {
    // Device small enough that the governor actually cycles levels, and
    // thresholds low enough that the crash lands while it is elevated —
    // the restore must rebuild refault history, cooldowns, and the EWMA
    // score, not just residency.
    let cfg = DeepumConfig::default().with_pressure_governor(8, 4, 5, 15);
    let sess = || {
        Session::new(ModelKind::MobileNet, 48)
            .iterations(2)
            .device_memory(48 << 20)
            .host_memory(8 << 30)
    };
    let clean = sess().run_configured(cfg.clone()).unwrap();
    let p = clean.pressure.expect("governed run reports pressure");
    assert!(
        p.level_changes > 0,
        "the session must actually cycle pressure levels"
    );
    let interrupted = sess()
        .injection_plan(InjectionPlan {
            device_reset_at: vec![7],
            driver_crash_at: vec![23],
            ..InjectionPlan::default()
        })
        .run_configured(cfg)
        .unwrap();
    let rec = interrupted
        .recovery
        .expect("hard-fault plan => recovery section");
    assert_eq!(rec.restores, 2, "both scheduled hard faults fire once");
    assert_eq!(
        serde_json::to_string(&clean).unwrap(),
        serde_json::to_string(&strip_recovery(interrupted)).unwrap(),
        "governor state must survive crash/restore bit-exactly"
    );
}

#[test]
fn explicit_cadence_on_crash_free_plan_changes_nothing() {
    let base = small().run(SystemKind::DeepUm).unwrap();
    let checked = small().checkpoint_every(4).run(SystemKind::DeepUm).unwrap();
    let rec = checked
        .recovery
        .expect("explicit cadence => recovery section");
    assert!(rec.checkpoints > 1);
    assert_eq!(rec.restores, 0);
    assert_eq!(rec.replay_kernels, 0);
    assert_eq!(rec.downtime_ns, 0);
    assert!(rec.snapshot_bytes > 0);
    assert_eq!(
        serde_json::to_string(&base).unwrap(),
        serde_json::to_string(&strip_recovery(checked)).unwrap(),
        "checkpointing must be observation-free"
    );
}

#[test]
fn ecc_poisoning_degrades_to_demand_paging() {
    let r = small()
        .injection_plan(InjectionPlan {
            seed: 5,
            ecc_rate: 0.02,
            ..InjectionPlan::default()
        })
        .run(SystemKind::DeepUm)
        .unwrap();
    let rec = r.recovery.expect("ecc plan => recovery section");
    assert!(
        rec.ecc_poisonings > 0,
        "2% per drain over an oversubscribed run must hit"
    );
    let h = r.health.expect("poisoned tables => degraded health");
    assert_eq!(
        h.backend.watchdog_state,
        deepum::sim::faultinject::DegradationState::Disabled
    );
    // The run still completes every iteration on pure demand paging.
    assert_eq!(r.iters.len(), 2);
}

/// Drops the wear section: a fallback restore reports `wear` even when
/// no page retired, so the corrupt-checkpoint differential must strip
/// it too before comparing against a clean run.
fn strip_wear(mut r: deepum::baselines::report::RunReport) -> deepum::baselines::report::RunReport {
    r.wear = None;
    r
}

#[test]
fn corrupt_newest_checkpoint_falls_back_and_converges() {
    // Headline differential: corrupt the newest checkpoint generation
    // (store ordinal 5 — the kernel-seq-40 image under the default
    // cadence of 8), then reset the device one kernel later. The
    // restore must detect the torn image, fall back one generation,
    // replay the longer journal suffix, and still land byte-identical
    // to an uninterrupted run.
    let clean = small().run(SystemKind::DeepUm).unwrap();
    let control = small()
        .injection_plan(InjectionPlan {
            device_reset_at: vec![41],
            ..InjectionPlan::default()
        })
        .run(SystemKind::DeepUm)
        .unwrap();
    let run_interrupted = || {
        small()
            .injection_plan(InjectionPlan {
                device_reset_at: vec![41],
                ckpt_corrupt_at: vec![5],
                ..InjectionPlan::default()
            })
            .run(SystemKind::DeepUm)
            .unwrap()
    };
    let interrupted = run_interrupted();

    let rec = interrupted
        .recovery
        .as_ref()
        .expect("hard-fault plan => recovery section");
    let control_rec = control
        .recovery
        .as_ref()
        .expect("hard-fault plan => recovery section");
    assert_eq!(rec.restores, 1, "one reset, one restore");
    assert!(
        rec.replay_kernels > control_rec.replay_kernels,
        "falling back a generation must replay a longer journal suffix \
         ({} vs {} kernels with the newest image intact)",
        rec.replay_kernels,
        control_rec.replay_kernels
    );
    let wear = interrupted
        .wear
        .as_ref()
        .expect("fallback restore => wear section");
    assert_eq!(wear.retired_pages, 0, "no ECC retirement in this plan");
    assert!(
        wear.recovery_generations >= 1,
        "the corrupt newest image must cost at least one generation"
    );
    // Two interrupted runs of the same plan are byte-identical.
    assert_eq!(
        serde_json::to_string(&interrupted).unwrap(),
        serde_json::to_string(&run_interrupted()).unwrap()
    );
    // And the recovered run converges to the uninterrupted one.
    assert_eq!(
        serde_json::to_string(&clean).unwrap(),
        serde_json::to_string(&strip_wear(strip_recovery(interrupted))).unwrap(),
        "a run that lost its newest checkpoint must converge to the \
         uninterrupted run"
    );

    // The full JSONL event stream of the recovered run is itself
    // deterministic, and it records the fallback: the corrupt newest
    // generation and the longer replay are visible in the trace, not
    // just in the report's wear section.
    let traced = || {
        let tracer = deepum::trace::shared(deepum::trace::Tracer::export());
        small()
            .injection_plan(InjectionPlan {
                device_reset_at: vec![41],
                ckpt_corrupt_at: vec![5],
                ..InjectionPlan::default()
            })
            .tracer(tracer.clone())
            .run(SystemKind::DeepUm)
            .unwrap();
        let jsonl = tracer.borrow_mut().jsonl();
        jsonl
    };
    let trace = traced();
    assert_eq!(
        trace,
        traced(),
        "recovered trace must replay byte-identical"
    );
    for kind in ["CheckpointCorrupt", "RecoveryFellBack"] {
        assert!(
            trace.contains(&format!("\"{kind}\"")),
            "recovered trace must record a {kind} event"
        );
    }
}

#[test]
fn oversubscribed_ecc_retirement_terminates_typed_and_validates() {
    use deepum::baselines::report::RunError;

    // Acceptance bar: a 2x-oversubscribed run under both sampled ECC
    // retirement and a scheduled burst either completes or fails with a
    // typed error — never a panic and never a fault livelock — with
    // driver invariants (blacklist/extent/residency disjointness)
    // checked after every fault drain and once more at the end.
    let workload = ModelKind::MobileNet.build(48);
    let costs = CostModel::v100_32gb()
        .with_device_memory(80 << 20)
        .with_host_memory(8 << 30);
    let cfg = UmRunConfig {
        costs: costs.clone(),
        seed: 7,
        plan: InjectionPlan {
            seed: 13,
            ecc_retire_rate: 0.01,
            retire_pages_at: vec![5, 9, 23],
            ..InjectionPlan::default()
        },
        validate_after_drain: true,
        ..UmRunConfig::new(2)
    };
    let mut driver = DeepumDriver::new(costs, DeepumConfig::default());
    match run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters()) {
        Ok(report) => {
            let wear = report.wear.expect("retirement fired => wear section");
            assert!(wear.retired_pages > 0, "the schedule must retire pages");
        }
        Err(
            RunError::WorkingSetExceedsDevice { .. }
            | RunError::OutOfMemory(_)
            | RunError::Driver(_),
        ) => {
            // Wearing the device below what one kernel needs resident is
            // a legal outcome of heavy retirement — as a typed error.
        }
        Err(e) => panic!("unexpected error class under ECC wear: {e:?}"),
    }
    driver.validate().expect("worn driver invariants hold");
    assert!(
        driver.wear().map_or(0, |w| w.retired_pages) > 0,
        "the retirement schedule must have fired"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any random injection plan leaves the UM driver's invariants intact
    /// after every single fault drain (checked inside the engine loop via
    /// `validate_after_drain`) and still completes the run.
    #[test]
    fn random_plans_never_violate_um_invariants(
        seed in 0u64..1000,
        h2d in 0.0f64..0.3,
        d2h in 0.0f64..0.3,
        oom in 0.0f64..0.3,
        storm in 0.0f64..0.2,
        corr in 0.0f64..0.5,
    ) {
        let workload = ModelKind::MobileNet.build(24);
        let costs = CostModel::v100_32gb()
            .with_device_memory(48 << 20)
            .with_host_memory(8 << 30);
        let cfg = UmRunConfig {
            costs: costs.clone(),
            seed: 7,
            plan: InjectionPlan {
                seed,
                dma_h2d_fail_rate: h2d,
                dma_d2h_fail_rate: d2h,
                host_oom_rate: oom,
                storm_rate: storm,
                corr_drop_rate: corr,
                ..InjectionPlan::default()
            },
            validate_after_drain: true,
            ..UmRunConfig::new(1)
        };
        let mut driver = DeepumDriver::new(costs, DeepumConfig::default());
        let report = run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters()).unwrap();
        prop_assert!(driver.validate().is_ok());
        prop_assert!(report.total > deepum::sim::time::Ns::ZERO);
    }

    /// Any random crash schedule (device resets by kernel seq, driver
    /// crashes by drain ordinal) recovers to the exact state of an
    /// uninterrupted run, and two recovered runs of the same plan
    /// serialize byte-identically.
    #[test]
    fn random_crash_schedules_recover_deterministically(
        resets in proptest::collection::vec(0u64..170, 0..3),
        crashes in proptest::collection::vec(0u64..40, 0..3),
        cadence in 2u64..16,
    ) {
        // Duplicate schedule entries are fine: a scheduled hard fault
        // fires at most once per seq/ordinal.
        let plan = InjectionPlan {
            device_reset_at: resets,
            driver_crash_at: crashes,
            ..InjectionPlan::default()
        };
        let interrupted = || {
            small()
                .checkpoint_every(cadence)
                .injection_plan(plan.clone())
                .run(SystemKind::DeepUm)
                .unwrap()
        };
        let a = interrupted();
        let b = interrupted();
        // (b) identical plans => byte-identical reports, recovery included.
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // (a) recovery converges to the uninterrupted run's final
        // residency, allocator state, and metrics.
        let clean = small().run(SystemKind::DeepUm).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&clean).unwrap(),
            serde_json::to_string(&strip_recovery(a)).unwrap()
        );
    }
}
