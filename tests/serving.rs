//! Inference-serving integration tests: the headline ladder
//! differential (under a seeded overload burst with a soft-fault
//! storm, the degradation ladder strictly reduces deadline misses
//! versus a no-ladder control), double-run byte-identity of both
//! configurations, and bystander isolation (the co-scheduled training
//! tenant's trace is byte-identical whether or not the ladder is
//! defending the endpoints).

use deepum::mem::PAGE_SIZE;
use deepum::sched::{JobKind, TenantSpec};
use deepum::serve::{EndpointSpec, LadderConfig, LoadCurve, ServeOutcome, ServeSim, ServeSpec};
use deepum::sim::costs::CostModel;
use deepum::sim::time::Ns;
use deepum::torch::models::ModelKind;
use deepum::torch::perf::PerfModel;
use deepum::InjectionPlan;

fn pages(bytes: u64) -> u64 {
    bytes.div_ceil(PAGE_SIZE as u64)
}

/// The overload scenario: two endpoints under a diurnal curve with a
/// 2× burst window mid-run, a soft-fault storm on the request path,
/// and a training bystander running within its guaranteed floor.
fn overload_spec(ladder: Option<LadderConfig>) -> (CostModel, ServeSpec) {
    let bystander_peak = pages(ModelKind::MobileNet.build(4).peak_bytes());
    let bystander_floor = bystander_peak + 1024;
    // Device: the bystander's whole floor plus a slice of the serving
    // working set, so the endpoints run under real memory pressure.
    let costs = CostModel::v100_32gb()
        .with_device_memory((bystander_floor + pages(16 << 20)) * PAGE_SIZE as u64)
        .with_host_memory(8 << 30);

    let endpoint = |name: &str| {
        EndpointSpec::new(name)
            .weights(24 << 20)
            .layers(6)
            .kv_per_token(256 << 10)
            .tokens(4, 16)
            .deadline(Ns::from_millis(12))
            .priority(1)
    };
    let spec = ServeSpec::new()
        .endpoint(endpoint("chat"))
        .endpoint(endpoint("code"))
        .cycles(48)
        .load(LoadCurve::new(4).period(16).burst(16, 32, 2))
        .seed(0x10ad)
        .plan(InjectionPlan {
            seed: 0xF00D,
            request_fail_rate: 0.10,
            max_retries: 3,
            ..InjectionPlan::default()
        })
        .ladder(ladder)
        .bystander(
            TenantSpec::new(
                "bystander",
                JobKind::Training {
                    model: ModelKind::MobileNet,
                    batch: 4,
                    iterations: 2,
                },
            )
            .floor_pages(bystander_floor)
            .traced(),
        );
    (costs, spec)
}

fn run(ladder: Option<LadderConfig>) -> ServeOutcome {
    let (costs, spec) = overload_spec(ladder);
    ServeSim::new(costs, PerfModel::v100(), spec).run()
}

fn bystander_trace(outcome: &ServeOutcome) -> String {
    outcome
        .tracers
        .iter()
        .find(|(tid, _)| *tid == 2)
        .map(|(_, tr)| tr.borrow_mut().jsonl())
        .expect("bystander tracer")
}

/// The headline differential: the ladder strictly reduces deadline
/// misses under the overload burst, sheds load in exchange, and both
/// configurations reproduce byte-identically on a second run.
#[test]
fn ladder_strictly_reduces_deadline_misses_under_overload() {
    let defended = run(Some(LadderConfig::default()));
    let control = run(None);

    defended.validation.clone().expect("defended invariants");
    control.validation.clone().expect("control invariants");
    assert!(
        defended.errors.is_empty(),
        "defended errors: {:?}",
        defended.errors
    );
    assert!(
        control.errors.is_empty(),
        "control errors: {:?}",
        control.errors
    );

    let d = defended.report.serving.as_ref().expect("serving section");
    let c = control.report.serving.as_ref().expect("serving section");

    // The overload actually bites in the control run...
    assert!(
        c.total_missed > 0,
        "control run never missed a deadline — the burst is not an overload"
    );
    // ...and the ladder strictly reduces the misses.
    assert!(
        d.total_missed < c.total_missed,
        "ladder did not reduce misses: defended {} vs control {}",
        d.total_missed,
        c.total_missed
    );
    // The ladder trades misses for typed sheds, not for silence: it
    // actually escalated, and the control never sheds on arrival.
    assert!(
        d.endpoints.iter().any(|e| e.escalations > 0),
        "ladder never escalated"
    );
    assert!(d.total_shed > c.total_shed);

    // Completed + shed accounts for every arrival in both runs — no
    // request vanishes.
    for section in [d, c] {
        let completed: u64 = section.endpoints.iter().map(|e| e.completed).sum();
        assert_eq!(completed + section.total_shed, section.total_requests);
    }
}

/// Both configurations are deterministic: a second run produces a
/// byte-identical report.
#[test]
fn serving_runs_reproduce_byte_identically() {
    for ladder in [Some(LadderConfig::default()), None] {
        let a = serde_json::to_string(&run(ladder.clone()).report).expect("serialize");
        let b = serde_json::to_string(&run(ladder).report).expect("serialize");
        assert_eq!(a, b, "serving report must be byte-stable across runs");
    }
}

/// The bystander training tenant runs within its floor, so its trace
/// is byte-identical whether the endpoints are defended by the ladder
/// or melting down without it — serving-side degradation never leaks
/// into a training tenant's execution.
#[test]
fn ladder_actions_never_perturb_the_bystander() {
    let defended = run(Some(LadderConfig::default()));
    let control = run(None);
    let a = bystander_trace(&defended);
    let b = bystander_trace(&control);
    assert!(a.contains("KernelEnd"), "bystander trace is empty");
    assert_eq!(
        a, b,
        "bystander trace differs between ladder and control runs"
    );
}
