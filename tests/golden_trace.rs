//! Golden-trace suite: three canonical workloads render to canonical
//! JSONL traces committed under `tests/golden/`.
//!
//! Each check runs the workload twice in-process and demands the two
//! traces be byte-identical (the determinism half), then compares the
//! bytes against the committed golden file (the schema/behaviour half).
//! Regenerate the goldens after an intentional behaviour change with:
//!
//! ```text
//! DEEPUM_BLESS=1 cargo test --test golden_trace
//! ```

use std::path::{Path, PathBuf};

use deepum::baselines::suite::{run_system, RunParams, System};
use deepum::core::config::DeepumConfig;
use deepum::sched::{JobKind, MultiTenant, TenantSpec};
use deepum::sim::costs::CostModel;
use deepum::torch::perf::PerfModel;
use deepum::torch::step::{TensorId, Workload, WorkloadBuilder};
use deepum::trace::{shared, Tracer};
use deepum::InjectionPlan;

const BLESS_ENV: &str = "DEEPUM_BLESS";

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// A short layered model: `n` weight tensors of 2 MiB, one kernel per
/// layer reading its weight and the previous activation. Small enough
/// that the golden trace stays reviewable, large enough to exercise
/// faulting, migration, and (under a small device) eviction.
fn layered(name: &str, n: usize) -> Workload {
    let mut b = WorkloadBuilder::new(name, "golden", 1);
    let weights: Vec<TensorId> = (0..n).map(|_| b.persistent(2 << 20)).collect();
    let mut x = b.alloc(1 << 20);
    b.kernel("load").writes(&[x]).flops(1e6).launch();
    for (i, w) in weights.iter().enumerate() {
        let y = b.alloc(1 << 20);
        // Long enough kernels (hundreds of µs of compute) that the
        // migration thread's overlap budget can complete prefetches
        // before the demand fault would win the race.
        b.kernel(format!("layer{i}"))
            .args(&[i as u64])
            .reads(&[x, *w])
            .writes(&[y])
            .flops(1e10)
            .launch();
        b.free(x);
        x = y;
    }
    b.free(x);
    let w = b.build();
    w.validate().expect("golden workload is valid");
    w
}

fn params(device_mb: u64, iters: usize) -> RunParams {
    let mut p = RunParams::v100_32gb(iters, 7);
    p.costs = CostModel::v100_32gb()
        .with_device_memory(device_mb << 20)
        .with_host_memory(1 << 30);
    p
}

/// Runs `system` over `workload` with an export tracer and returns the
/// JSONL rendering of the full event stream.
fn run_traced(system: &System, workload: &Workload, params: &RunParams) -> String {
    let tracer = shared(Tracer::export());
    let mut p = params.clone();
    p.tracer = Some(tracer.clone());
    let report = run_system(system, workload, &p).expect("traced golden run completes");
    let summary = report.trace.expect("traced run reports a trace section");
    assert_eq!(summary.events_dropped, 0, "export sink never drops");
    let jsonl = tracer.borrow_mut().jsonl();
    jsonl
}

fn check_golden(file: &str, system: &System, workload: &Workload, params: &RunParams) {
    let a = run_traced(system, workload, params);
    let b = run_traced(system, workload, params);
    assert_eq!(a, b, "{file}: trace must replay byte-identical");
    assert!(!a.is_empty(), "{file}: trace must not be empty");

    // Round-trip through the parser so a golden file is guaranteed
    // loadable by tooling, not just comparable as bytes.
    let records = deepum::trace::export::parse_jsonl(&a).expect("golden trace parses");
    assert_eq!(records.len(), a.lines().count());

    let path = golden_path(file);
    if std::env::var(BLESS_ENV).is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &a).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}; regenerate with {BLESS_ENV}=1 cargo test --test golden_trace",
            path.display()
        )
    });
    assert_eq!(
        a, golden,
        "{file}: trace diverged from the golden copy; if the change is \
         intentional, re-bless with {BLESS_ENV}=1 cargo test --test golden_trace"
    );
}

#[test]
fn golden_demand_only() {
    // Naive UM: every migration is a demand fault; ample device memory
    // keeps eviction out of the picture.
    let w = layered("golden-demand/b1", 4);
    check_golden("demand_only.jsonl", &System::Um, &w, &params(64, 2));
}

#[test]
fn golden_prefetch_heavy() {
    // DeepUM (prefetch + pre-eviction) on a device holding ~half the
    // working set: after the cold iteration the correlation chain keeps
    // re-fetching evicted blocks ahead of their kernels.
    let w = layered("golden-prefetch/b1", 6);
    let cfg = DeepumConfig::prefetch_preevict().with_prefetch_degree(8);
    check_golden(
        "prefetch_heavy.jsonl",
        &System::DeepUm(cfg),
        &w,
        &params(8, 3),
    );
}

#[test]
fn golden_thrash_pressure() {
    // Governed DeepUM on a device holding ~half the working set, with
    // thresholds low enough that the refault loop escalates the
    // governor: this trace pins the three pressure event kinds —
    // level transitions, cooldown skips during victim selection, and
    // predicted-window resizes.
    let w = layered("golden-thrash/b1", 8);
    let cfg = DeepumConfig::default()
        .with_prefetch_degree(4)
        .with_pressure_governor(8, 4, 5, 15);
    check_golden(
        "thrash_pressure.jsonl",
        &System::DeepUm(cfg),
        &w,
        &params(8, 3),
    );

    // The golden copy must actually exercise all three new kinds; a
    // regression that silences one of them should fail loudly here, not
    // just shrink the file.
    let golden = std::fs::read_to_string(golden_path("thrash_pressure.jsonl")).expect("golden");
    for kind in [
        "PressureLevelChanged",
        "VictimCooldownSkip",
        "PredictedWindowResized",
    ] {
        assert!(
            golden.contains(kind),
            "thrash_pressure.jsonl must contain a {kind} event"
        );
    }
}

/// Runs the canonical three-tenant schedule and returns the
/// concatenation of the per-tenant JSONL streams in tenant-id order.
fn run_multitenant_traced() -> String {
    // 4608-page (18 MiB) device. Tenant 0 (priority 2, 512-page floor,
    // thrash-prone governor) runs an 8-layer model far over its floor;
    // tenant 1 (2560-page floor) fits a 3-layer model entirely inside
    // its guarantee; tenant 2 arrives late asking for a 4096-page floor
    // that the remaining 1536 pages cannot satisfy — denied.
    let costs = CostModel::v100_32gb()
        .with_device_memory(4608 * 4096)
        .with_host_memory(1 << 30);
    let noisy_cfg = DeepumConfig::default()
        .with_prefetch_degree(4)
        .with_pressure_governor(8, 4, 5, 15);
    let outcome = MultiTenant::new(costs, PerfModel::v100())
        .tenant(
            TenantSpec::new(
                "noisy",
                JobKind::Custom {
                    workload: layered("golden-mt-noisy/b1", 8),
                    repetitions: 2,
                },
            )
            .priority(2)
            .floor_pages(512)
            .config(noisy_cfg)
            .traced(),
        )
        .tenant(
            TenantSpec::new(
                "steady",
                JobKind::Custom {
                    workload: layered("golden-mt-steady/b1", 3),
                    repetitions: 2,
                },
            )
            .floor_pages(2560)
            .traced(),
        )
        .tenant(
            TenantSpec::new(
                "denied",
                JobKind::Custom {
                    workload: layered("golden-mt-denied/b1", 2),
                    repetitions: 1,
                },
            )
            .floor_pages(4096)
            .arrival(2)
            .traced(),
        )
        .run();
    outcome.validation.expect("shared driver invariants hold");
    let tenants = outcome
        .report
        .tenants
        .as_deref()
        .expect("tenant section present");
    assert!(tenants[0].admitted && tenants[0].completed);
    assert!(tenants[1].admitted && tenants[1].completed);
    assert!(!tenants[2].admitted, "tenant 2 must be denied");

    let mut streams = outcome.tracers;
    streams.sort_by_key(|(tid, _)| *tid);
    streams
        .iter()
        .map(|(_, tr)| tr.borrow_mut().jsonl())
        .collect()
}

#[test]
fn golden_multitenant_pressure() {
    let a = run_multitenant_traced();
    let b = run_multitenant_traced();
    assert_eq!(a, b, "multitenant trace must replay byte-identical");
    assert!(!a.is_empty());
    let records = deepum::trace::export::parse_jsonl(&a).expect("golden trace parses");
    assert_eq!(records.len(), a.lines().count());

    let path = golden_path("multitenant_pressure.jsonl");
    if std::env::var(BLESS_ENV).is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &a).expect("write golden");
    } else {
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {}: {e}; regenerate with {BLESS_ENV}=1 cargo test --test golden_trace",
                path.display()
            )
        });
        assert_eq!(
            a, golden,
            "multitenant_pressure.jsonl: trace diverged from the golden copy; \
             if the change is intentional, re-bless with {BLESS_ENV}=1 \
             cargo test --test golden_trace"
        );
    }

    // The golden copy must exercise all four tenancy event kinds; a
    // regression that silences one should fail loudly here.
    let golden =
        std::fs::read_to_string(golden_path("multitenant_pressure.jsonl")).expect("golden");
    for kind in [
        "TenantAdmitted",
        "TenantDenied",
        "TenantEvictionCharged",
        "PressureSignal",
    ] {
        assert!(
            golden.contains(kind),
            "multitenant_pressure.jsonl must contain a {kind} event"
        );
    }
}

/// The layered model plus a 4 MiB large-pool scratch tensor that is
/// written once and freed: no later request matches its size, so the
/// caching allocator keeps the PT block cached-inactive and the
/// eviction pressure from the layers drops its pages via `Invalidate`
/// instead of write-back (Section 5.2).
fn chaos_workload(n: usize) -> Workload {
    let mut b = WorkloadBuilder::new("golden-chaos/b1", "golden", 1);
    let weights: Vec<TensorId> = (0..n).map(|_| b.persistent(2 << 20)).collect();
    let scratch = b.alloc(4 << 20);
    b.kernel("scratch_init")
        .writes(&[scratch])
        .flops(1e10)
        .launch();
    b.free(scratch);
    let mut x = b.alloc(1 << 20);
    b.kernel("load").writes(&[x]).flops(1e6).launch();
    for (i, w) in weights.iter().enumerate() {
        let y = b.alloc(1 << 20);
        b.kernel(format!("layer{i}"))
            .args(&[i as u64])
            .reads(&[x, *w])
            .writes(&[y])
            .flops(1e10)
            .launch();
        b.free(x);
        x = y;
    }
    b.free(x);
    let w = b.build();
    w.validate().expect("golden workload is valid");
    w
}

#[test]
fn golden_chaos_recovery() {
    // Watchdogged DeepUM under a seeded fault storm with a checkpoint
    // cadence and one scheduled device reset: this trace pins the
    // resilience event kinds — injected soft faults, ECC table
    // poisoning, watchdog state changes, inactive-page invalidation,
    // and the checkpoint/restore pair around the hard fault.
    let w = chaos_workload(8);
    let cfg = DeepumConfig::default()
        .with_prefetch_degree(4)
        .with_watchdog(2, 1, 60, 2);
    let mut p = params(8, 3);
    p.checkpoint_every = Some(8);
    p.plan = InjectionPlan {
        // Seed chosen so the sampled ECC poisoning lands *after* the
        // watchdog has cycled and wasted prefetches have accumulated; an
        // early poisoning would disable prefetching and silence both.
        seed: 7,
        dma_h2d_fail_rate: 0.05,
        corr_drop_rate: 0.5,
        ecc_rate: 0.02,
        device_reset_at: vec![12],
        ..InjectionPlan::default()
    };
    check_golden("chaos_recovery.jsonl", &System::DeepUm(cfg), &w, &p);

    // The golden copy must exercise every resilience event kind; a
    // regression that silences one should fail loudly here, not just
    // shrink the file.
    let golden = std::fs::read_to_string(golden_path("chaos_recovery.jsonl")).expect("golden");
    for kind in [
        "Invalidate",
        "WatchdogTransition",
        "TablesPoisoned",
        "InjectedFault",
        "Checkpoint",
        "Restored",
    ] {
        assert!(
            golden.contains(kind),
            "chaos_recovery.jsonl must contain a {kind} event"
        );
    }
}

/// Runs the canonical serving-overload scenario and returns the
/// endpoint's JSONL stream: one endpoint with a deadline tight enough
/// that the burst overloads it, a soft-fault storm on the request path,
/// and the default ladder defending it — so the trace pins every
/// serving event kind, from arrival through escalation to typed sheds.
fn run_serving_traced() -> String {
    use deepum::serve::{EndpointSpec, LadderConfig, LoadCurve, ServeSim, ServeSpec};
    use deepum::sim::time::Ns;

    let costs = CostModel::v100_32gb()
        .with_device_memory(24 << 20)
        .with_host_memory(1 << 30);
    let spec = ServeSpec::new()
        .endpoint(
            EndpointSpec::new("chat")
                .weights(8 << 20)
                .layers(4)
                .kv_per_token(128 << 10)
                .tokens(4, 8)
                .deadline(Ns::from_nanos(150_000)),
        )
        .cycles(12)
        .load(LoadCurve::new(3).period(8).burst(2, 10, 2))
        .seed(0x601d)
        .plan(InjectionPlan {
            seed: 0xF00D,
            request_fail_rate: 0.25,
            max_retries: 2,
            ..InjectionPlan::default()
        })
        .ladder(Some(LadderConfig::default()))
        .traced();
    let outcome = ServeSim::new(costs, PerfModel::v100(), spec).run();
    outcome.validation.expect("shared driver invariants hold");
    assert!(outcome.errors.is_empty(), "errors: {:?}", outcome.errors);
    let mut streams = outcome.tracers;
    streams.sort_by_key(|(tid, _)| *tid);
    streams
        .iter()
        .map(|(_, tr)| tr.borrow_mut().jsonl())
        .collect()
}

#[test]
fn golden_serving_overload() {
    let a = run_serving_traced();
    let b = run_serving_traced();
    assert_eq!(a, b, "serving trace must replay byte-identical");
    assert!(!a.is_empty());
    let records = deepum::trace::export::parse_jsonl(&a).expect("golden trace parses");
    assert_eq!(records.len(), a.lines().count());

    let path = golden_path("serving_overload.jsonl");
    if std::env::var(BLESS_ENV).is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &a).expect("write golden");
    } else {
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {}: {e}; regenerate with {BLESS_ENV}=1 cargo test --test golden_trace",
                path.display()
            )
        });
        assert_eq!(
            a, golden,
            "serving_overload.jsonl: trace diverged from the golden copy; \
             if the change is intentional, re-bless with {BLESS_ENV}=1 \
             cargo test --test golden_trace"
        );
    }

    // The golden copy must exercise every serving event kind; a
    // regression that silences one should fail loudly here, not just
    // shrink the file.
    let golden = std::fs::read_to_string(golden_path("serving_overload.jsonl")).expect("golden");
    for kind in [
        "RequestArrived",
        "RequestCompleted",
        "DeadlineMissed",
        "RequestShed",
        "DegradationTransition",
        "HintApplied",
    ] {
        assert!(
            golden.contains(kind),
            "serving_overload.jsonl must contain a {kind} event"
        );
    }
}

/// Runs the canonical device-wear scenario and returns the
/// concatenation of the per-tenant JSONL streams in tenant-id order.
///
/// A 4608-page device hosts two tenants whose floors sum to 4604
/// pages, leaving 4 pages of slack. Tenant 0 ("wearing", priority 2)
/// runs under a plan that retires five pages at scheduled drain
/// ordinals — the fifth shrinks capacity below the floor sum, so the
/// driver revokes the loosest floor (tenant 1, lower priority) and the
/// scheduler fails it with the typed `FloorLost`. The same plan
/// corrupts a stored checkpoint generation and then hard-resets the
/// device, so recovery skips the damaged newest image and falls back a
/// generation, replaying the longer journal.
fn run_wear_recovery_traced() -> String {
    let costs = CostModel::v100_32gb()
        .with_device_memory(4608 * 4096)
        .with_host_memory(1 << 30);
    let wearing_cfg = DeepumConfig::default().with_prefetch_degree(4);
    let outcome = MultiTenant::new(costs, PerfModel::v100())
        .tenant(
            TenantSpec::new(
                "wearing",
                JobKind::Custom {
                    workload: layered("golden-wear-noisy/b1", 8),
                    repetitions: 2,
                },
            )
            .priority(2)
            .floor_pages(2300)
            .config(wearing_cfg)
            .plan(InjectionPlan {
                seed: 11,
                retire_pages_at: vec![18, 22, 26, 30, 34],
                device_reset_at: vec![17],
                ckpt_corrupt_at: vec![2],
                ..InjectionPlan::default()
            })
            .traced(),
        )
        .tenant(
            TenantSpec::new(
                "victim",
                JobKind::Custom {
                    workload: layered("golden-wear-victim/b1", 3),
                    repetitions: 3,
                },
            )
            .floor_pages(2304)
            .traced(),
        )
        .run();
    outcome.validation.expect("shared driver invariants hold");
    let tenants = outcome
        .report
        .tenants
        .as_deref()
        .expect("tenant section present");
    assert!(tenants[0].admitted && tenants[0].completed);
    assert!(
        !tenants[1].completed,
        "the victim must lose its floor, got: {tenants:?}"
    );
    let wear = outcome.report.wear.as_ref().expect("wear section present");
    assert_eq!(wear.retired_pages, 5);
    assert_eq!(wear.remigrations, 512, "one full block remigrates");
    assert!(wear.recovery_generations >= 1, "recovery must fall back");

    let mut streams = outcome.tracers;
    streams.sort_by_key(|(tid, _)| *tid);
    streams
        .iter()
        .map(|(_, tr)| tr.borrow_mut().jsonl())
        .collect()
}

#[test]
fn golden_wear_recovery() {
    let a = run_wear_recovery_traced();
    let b = run_wear_recovery_traced();
    assert_eq!(a, b, "wear trace must replay byte-identical");
    assert!(!a.is_empty());
    let records = deepum::trace::export::parse_jsonl(&a).expect("golden trace parses");
    assert_eq!(records.len(), a.lines().count());

    let path = golden_path("wear_recovery.jsonl");
    if std::env::var(BLESS_ENV).is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &a).expect("write golden");
    } else {
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {}: {e}; regenerate with {BLESS_ENV}=1 cargo test --test golden_trace",
                path.display()
            )
        });
        assert_eq!(
            a, golden,
            "wear_recovery.jsonl: trace diverged from the golden copy; \
             if the change is intentional, re-bless with {BLESS_ENV}=1 \
             cargo test --test golden_trace"
        );
    }

    // The golden copy must exercise every wear/recovery event kind; a
    // regression that silences one should fail loudly here, not just
    // shrink the file.
    let golden = std::fs::read_to_string(golden_path("wear_recovery.jsonl")).expect("golden");
    for kind in [
        "PageRetired",
        "BlockRemigrated",
        "CheckpointCorrupt",
        "RecoveryFellBack",
        "FloorLost",
    ] {
        assert!(
            golden.contains(kind),
            "wear_recovery.jsonl must contain a {kind} event"
        );
    }
}

#[test]
fn golden_eviction_pressure() {
    // Full DeepUM on a device holding ~half the working set: every
    // iteration migrates, pre-evicts, writes back, and invalidates.
    let w = layered("golden-evict/b1", 8);
    check_golden(
        "eviction_pressure.jsonl",
        &System::DeepUm(DeepumConfig::default().with_prefetch_degree(4)),
        &w,
        &params(8, 2),
    );
}
