//! Differential equivalence harness for the hot-path rewrite and the
//! parallel bench driver.
//!
//! The suite's byte-identity contract has two faces:
//!
//! * **Self-identity** — a cell is a sealed deterministic world, so
//!   running it twice on the same thread must reproduce the `RunReport`
//!   JSON and the full JSONL trace byte for byte. This catches
//!   iteration-order leaks (e.g. a hash map smuggled into the driver)
//!   at the finest grain.
//! * **Serial-vs-parallel identity** — running the same cells on the
//!   rayon pool must produce exactly the bytes the serial driver
//!   produced, cell by cell. Cells share no mutable state; the pool
//!   only changes *when* a cell runs, which must never change *what*
//!   it computes.
//!
//! `deepum_suite` asserts the digest form of this contract over the
//! full 176-cell grid; these tests assert the byte form (reports AND
//! traces, not digests) over a small fast slice of the same grid so
//! tier-1 stays quick.

use deepum_bench::suite::{
    cell_report_json, cell_traced, map_parallel, run_parallel, run_serial, suite_cells, SuiteCell,
};

/// A fast slice of the real suite grid: every system under one small
/// (model, batch) cell plus a couple of cheap foreign-model cells, so
/// the naive-UM, DeepUM, planner, and OOM report paths all appear.
fn fast_cells() -> Vec<SuiteCell> {
    let cells: Vec<SuiteCell> = suite_cells()
        .into_iter()
        .filter(|c| {
            c.key.starts_with("bert-large-b14-")
                || c.key == "gpt2-xl-b3-lms-i2"
                || c.key == "gpt2-l-b3-ideal-i2"
        })
        .collect();
    assert_eq!(
        cells.len(),
        7,
        "the fast slice should cover 5 systems + 2 foreign cells"
    );
    cells
}

#[test]
fn serial_rerun_is_byte_identical() {
    for cell in fast_cells() {
        let first = cell_report_json(&cell);
        let second = cell_report_json(&cell);
        assert_eq!(
            first, second,
            "{}: report JSON differs across reruns",
            cell.key
        );
    }
}

#[test]
fn serial_rerun_traces_are_byte_identical() {
    // The trace is the finest observable: every migration, eviction,
    // and prefetch decision in virtual-time order.
    let mut any_events = false;
    for cell in fast_cells() {
        let (report_a, trace_a) = cell_traced(&cell);
        let (report_b, trace_b) = cell_traced(&cell);
        assert_eq!(report_a, report_b, "{}: traced report differs", cell.key);
        assert_eq!(trace_a, trace_b, "{}: JSONL trace differs", cell.key);
        any_events |= !trace_a.is_empty();
    }
    // Planner-style systems may emit no migration events; the UM and
    // DeepUM cells in the slice must.
    assert!(any_events, "no cell in the fast slice emitted trace events");
}

#[test]
fn parallel_reports_match_serial_bytes() {
    let cells = fast_cells();
    let serial: Vec<String> = cells.iter().map(cell_report_json).collect();
    let parallel = map_parallel(cells.clone(), |c| cell_report_json(&c));
    for ((cell, s), p) in cells.iter().zip(&serial).zip(&parallel) {
        assert_eq!(s, p, "{}: parallel report JSON != serial", cell.key);
    }
}

#[test]
fn parallel_traces_match_serial_bytes() {
    let cells = fast_cells();
    let serial: Vec<(String, String)> = cells.iter().map(cell_traced).collect();
    let parallel = map_parallel(cells.clone(), |c| cell_traced(&c));
    for ((cell, s), p) in cells.iter().zip(&serial).zip(&parallel) {
        assert_eq!(s.0, p.0, "{}: parallel traced report != serial", cell.key);
        assert_eq!(s.1, p.1, "{}: parallel JSONL trace != serial", cell.key);
    }
}

#[test]
fn parallel_outcomes_match_serial_digests() {
    // The exact contract `deepum_suite` enforces over the whole grid,
    // on the fast slice: digests and simulated results line up cell by
    // cell, in input order.
    let cells = fast_cells();
    let serial = run_serial(&cells);
    let parallel = run_parallel(&cells);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.key, p.key, "drivers enumerated different cells");
        assert_eq!(s.hash, p.hash, "{}: digest diverged", s.key);
        assert_eq!(s.kernels, p.kernels, "{}: kernel count diverged", s.key);
        assert_eq!(s.sim_ns, p.sim_ns, "{}: simulated time diverged", s.key);
        assert_eq!(s.ok, p.ok, "{}: outcome kind diverged", s.key);
    }
}
