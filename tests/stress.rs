//! Oversubscription stress harness for the memory-pressure governor.
//!
//! Three contracts, per the governor's design (DESIGN.md §13):
//!
//! * **Liveness** — randomized workloads at 1.5×–4× oversubscription,
//!   crossed with transient injection plans, always make forward
//!   progress, keep the UM driver's invariants intact after every fault
//!   drain, and replay byte-identically;
//! * **Mitigation** — on a deterministic thrashing workload the governor
//!   strictly reduces the total refault count versus an ungoverned run
//!   (refaults are recounted from the event trace with the same
//!   evicted-then-demand-refaulted-within-K-kernels rule the governor
//!   uses, so the two sides are measured identically);
//! * **Typed failure** — a single kernel whose working set cannot fit in
//!   device memory terminates with [`RunError::WorkingSetExceedsDevice`]
//!   instead of looping on faults forever.

use deepum::baselines::executor::um::{run_um, UmRunConfig};
use deepum::baselines::report::{RunError, RunReport};
use deepum::core::config::DeepumConfig;
use deepum::core::driver::DeepumDriver;
use deepum::gpu::engine::UmBackend as _;
use deepum::sim::costs::CostModel;
use deepum::torch::models::ModelKind;
use deepum::torch::step::{TensorId, Workload, WorkloadBuilder};
use deepum::trace::export::parse_jsonl;
use deepum::trace::{shared, TraceEvent, Tracer};
use deepum::InjectionPlan;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The refault window used throughout this suite (both by the governed
/// runs and by the trace-based recount).
const REFAULT_WINDOW: u64 = 8;

/// A hot/cold ping-pong workload: every kernel reads the same 4 hot
/// weight blocks plus one fresh cold block. On a device holding the hot
/// set plus a couple of cold blocks, least-recently-migrated eviction
/// keeps choosing the hot blocks (their migration stamps age while they
/// are *accessed* every kernel), evicting exactly the data the next
/// kernel needs — the textbook thrash the governor exists to stop.
fn hot_cold_workload(kernels: usize) -> Workload {
    let mut b = WorkloadBuilder::new("stress-hotcold/b1", "stress", 1);
    let hot: Vec<TensorId> = (0..4).map(|_| b.persistent(2 << 20)).collect();
    let cold: Vec<TensorId> = (0..kernels).map(|_| b.persistent(2 << 20)).collect();
    for (i, c) in cold.iter().enumerate() {
        let mut reads = hot.clone();
        reads.push(*c);
        b.kernel(format!("k{i}"))
            .args(&[i as u64])
            .reads(&reads)
            .flops(1e9)
            .launch();
    }
    let w = b.build();
    w.validate().expect("stress workload is valid");
    w
}

/// Runs the hot/cold workload under demand paging (prefetching off, so
/// the only mitigation in play is the governor's) and returns the report
/// plus the full JSONL event trace.
fn run_thrash(governed: bool) -> (RunReport, String) {
    let w = hot_cold_workload(12);
    // Device: 6 blocks = hot set (4) + two cold blocks.
    let costs = CostModel::v100_32gb()
        .with_device_memory(12 << 20)
        .with_host_memory(1 << 30);
    let tracer = shared(Tracer::export());
    let cfg = UmRunConfig {
        costs: costs.clone(),
        seed: 7,
        validate_after_drain: true,
        tracer: Some(tracer.clone()),
        ..UmRunConfig::new(2)
    };
    let base = DeepumConfig {
        enable_prefetch: false,
        enable_preevict: false,
        enable_invalidate: false,
        ..DeepumConfig::default()
    };
    let dcfg = if governed {
        DeepumConfig {
            enable_pressure_governor: true,
            pressure_refault_window: REFAULT_WINDOW,
            ..base
        }
    } else {
        base
    };
    let mut d = DeepumDriver::new(costs, dcfg);
    let report =
        run_um(&w, &mut d, "deepum", &cfg, |d| d.counters()).expect("thrash run completes");
    d.validate().expect("driver validates after drain");
    let jsonl = tracer.borrow_mut().jsonl();
    (report, jsonl)
}

/// Counts refaults in a trace with the governor's own rule: a block
/// evicted and then demand-migrated again within [`REFAULT_WINDOW`]
/// kernel launches is one refault. This is how the governor-off side of
/// the differential is measured (it has no governor to count for it).
fn refaults_in_trace(jsonl: &str) -> u64 {
    let records = parse_jsonl(jsonl).expect("trace parses");
    let mut kernel_idx: u64 = 0;
    let mut evicted_at: BTreeMap<u64, u64> = BTreeMap::new();
    let mut refaults = 0u64;
    for rec in &records {
        match &rec.event {
            TraceEvent::KernelBegin { .. } => kernel_idx += 1,
            TraceEvent::EvictVictim { block, .. } => {
                evicted_at.insert(*block, kernel_idx);
            }
            TraceEvent::PageMigration {
                block, prefetch, ..
            } => {
                if let Some(at) = evicted_at.remove(block) {
                    if !prefetch && kernel_idx.saturating_sub(at) <= REFAULT_WINDOW {
                        refaults += 1;
                    }
                }
            }
            _ => {}
        }
    }
    refaults
}

#[test]
fn governor_strictly_reduces_refaults_on_thrashing_workload() {
    let (off_report, off_trace) = run_thrash(false);
    let (on_report, on_trace) = run_thrash(true);

    // Same computation either way: every kernel of every iteration ran.
    assert_eq!(
        off_report.counters.kernels_launched,
        on_report.counters.kernels_launched
    );

    let off_refaults = refaults_in_trace(&off_trace);
    let on_refaults = refaults_in_trace(&on_trace);
    assert!(
        off_refaults > 0,
        "the ungoverned hot/cold loop must ping-pong"
    );
    assert!(
        on_refaults < off_refaults,
        "governor must strictly reduce refaults: on={on_refaults}, off={off_refaults}"
    );

    // The governed report carries the pressure section and its refault
    // count agrees with the trace-based recount; the ungoverned report
    // must omit the section entirely.
    let pressure = on_report.pressure.expect("governed run reports pressure");
    assert_eq!(pressure.refaults, on_refaults);
    assert!(off_report.pressure.is_none());
}

#[test]
fn governed_thrash_run_is_deterministic() {
    let (a, ta) = run_thrash(true);
    let (b, tb) = run_thrash(true);
    assert_eq!(a, b);
    assert_eq!(
        serde_json::to_string(&a).expect("report serializes"),
        serde_json::to_string(&b).expect("report serializes")
    );
    assert_eq!(ta, tb, "governed traces replay byte-identically");
}

#[test]
fn single_kernel_overflow_terminates_with_typed_error() {
    // One kernel reads a 32 MiB tensor on a 16 MiB device: its minimum
    // resident set is twice the device. The governor's in-flight pins
    // make that un-evictable, so the run must end with the typed error —
    // quickly, not after an eviction/refault livelock.
    let mut b = WorkloadBuilder::new("stress-overflow/b1", "stress", 1);
    let big = b.persistent(32 << 20);
    b.kernel("huge").reads(&[big]).flops(1e9).launch();
    let w = b.build();
    w.validate().expect("overflow workload is valid");

    let costs = CostModel::v100_32gb()
        .with_device_memory(16 << 20)
        .with_host_memory(1 << 30);
    let cfg = UmRunConfig {
        costs: costs.clone(),
        seed: 7,
        ..UmRunConfig::new(1)
    };
    let dcfg = DeepumConfig::default().with_pressure_governor(8, 4, 15, 35);
    let mut d = DeepumDriver::new(costs.clone(), dcfg);
    let err = run_um(&w, &mut d, "deepum", &cfg, |d| d.counters())
        .expect_err("overflowing kernel must not complete");
    match err {
        RunError::WorkingSetExceedsDevice {
            needed_pages,
            capacity_pages,
        } => {
            assert!(needed_pages > 0);
            assert_eq!(capacity_pages, (16 << 20) / 4096);
        }
        other => panic!("expected WorkingSetExceedsDevice, got: {other}"),
    }

    // Ungoverned runs keep the pre-governor behaviour: the engine's
    // single-pass access walk still terminates (each block faults once
    // per kernel), it just cannot promise the working set was ever
    // simultaneously resident.
    let mut ungoverned = DeepumDriver::new(costs, DeepumConfig::default());
    run_um(&w, &mut ungoverned, "deepum", &cfg, |d| d.counters())
        .expect("ungoverned overflow run still terminates");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Randomized oversubscription (device sized at 1.5×–4× below the
    /// workload's peak) crossed with transient injection plans: governed
    /// runs complete every iteration, keep the driver's invariants
    /// (including the cooldown/candidate disjointness check) intact
    /// after every single fault drain, and replay byte-identically.
    #[test]
    fn oversubscribed_governed_runs_stay_live_and_deterministic(
        ratio_pct in 150u64..400,
        seed in 0u64..1000,
        h2d in 0.0f64..0.2,
        oom in 0.0f64..0.1,
        corr in 0.0f64..0.3,
    ) {
        let w = ModelKind::MobileNet.build(24);
        let device = (w.peak_bytes() * 100 / ratio_pct).max(8 << 20);
        let costs = CostModel::v100_32gb()
            .with_device_memory(device)
            .with_host_memory(8 << 30);
        let plan = InjectionPlan {
            seed,
            dma_h2d_fail_rate: h2d,
            host_oom_rate: oom,
            corr_drop_rate: corr,
            ..InjectionPlan::default()
        };
        let dcfg = DeepumConfig::default().with_pressure_governor(REFAULT_WINDOW, 4, 15, 35);
        let mut reports = Vec::new();
        for _ in 0..2 {
            let cfg = UmRunConfig {
                costs: costs.clone(),
                seed: 7,
                plan: plan.clone(),
                validate_after_drain: true,
                ..UmRunConfig::new(1)
            };
            let mut d = DeepumDriver::new(costs.clone(), dcfg.clone());
            let r = run_um(&w, &mut d, "deepum", &cfg, |d| d.counters()).expect("governed run completes");
            prop_assert!(d.validate().is_ok());
            prop_assert_eq!(r.iters.len(), 1, "forward progress: the iteration must finish");
            prop_assert!(r.pressure.is_some(), "governed run must report pressure");
            reports.push(r);
        }
        prop_assert_eq!(
            serde_json::to_string(&reports[0]).expect("report serializes"),
            serde_json::to_string(&reports[1]).expect("report serializes")
        );
    }
}
