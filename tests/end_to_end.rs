//! End-to-end integration: the whole stack (workload generator → caching
//! allocator → CUDA interposition → GPU engine → UM driver → DeepUM)
//! driven through the public `Session` API.

use deepum::baselines::report::RunError;
use deepum::core::config::DeepumConfig;
use deepum::torch::models::ModelKind;
use deepum::{Session, SystemKind};

/// A small oversubscribed session that runs in a few seconds in debug.
fn oversubscribed() -> Session {
    Session::new(ModelKind::MobileNet, 48)
        .iterations(3)
        .device_memory(64 << 20)
        .host_memory(8 << 30)
}

/// Modest look-ahead fits this 87-kernel stream.
fn tuned() -> DeepumConfig {
    DeepumConfig::default().with_prefetch_degree(16)
}

#[test]
fn deepum_outperforms_naive_um() {
    let s = oversubscribed();
    let um = s.run(SystemKind::Um).unwrap();
    let dm = s.run_configured(tuned()).unwrap();
    assert!(
        dm.steady_iter_time() < um.steady_iter_time(),
        "deepum {} vs um {}",
        dm.steady_iter_time(),
        um.steady_iter_time()
    );
    assert!(dm.counters.pages_prefetched > 0);
    assert!(dm.counters.prefetch_hits > 0);
    assert!(dm.counters.pages_invalidated > 0);
}

#[test]
fn ideal_bounds_everything() {
    let s = oversubscribed();
    let ideal = s.run(SystemKind::Ideal).unwrap();
    for kind in [SystemKind::Um, SystemKind::Lms, SystemKind::AutoTm] {
        let r = s.run(kind).unwrap();
        assert!(
            ideal.steady_iter_time() <= r.steady_iter_time(),
            "{:?} beat ideal",
            kind
        );
    }
}

#[test]
fn full_runs_are_deterministic() {
    let s = oversubscribed();
    let a = s.run_configured(tuned()).unwrap();
    let b = s.run_configured(tuned()).unwrap();
    assert_eq!(a.total, b.total);
    assert_eq!(a.energy_joules, b.energy_joules);
    assert_eq!(a.counters, b.counters);
    for (x, y) in a.iters.iter().zip(&b.iters) {
        assert_eq!(x.elapsed, y.elapsed);
        assert_eq!(x.counters, y.counters);
    }
}

#[test]
fn ablation_layers_stack() {
    // Each optimization may only help (within a small tolerance for
    // scheduling noise): UM >= prefetch >= +preevict >= +invalidate.
    let s = oversubscribed();
    let um = s.run(SystemKind::Um).unwrap().steady_iter_time();
    let p = s
        .run_configured(DeepumConfig::prefetch_only().with_prefetch_degree(16))
        .unwrap()
        .steady_iter_time();
    let pe = s
        .run_configured(DeepumConfig::prefetch_preevict().with_prefetch_degree(16))
        .unwrap()
        .steady_iter_time();
    let all = s.run_configured(tuned()).unwrap().steady_iter_time();

    let tol = |t: deepum::sim::time::Ns| t.scale(1.05);
    assert!(p <= tol(um), "prefetch {p} vs um {um}");
    assert!(pe <= tol(p), "preevict {pe} vs prefetch {p}");
    assert!(all <= tol(pe), "invalidate {all} vs preevict {pe}");
}

#[test]
fn steady_state_is_stable() {
    // Once the schedule is learned, iteration times settle: the last
    // iteration stays within noise of the second. (The *first* iteration
    // can legitimately be the cheapest on the UM path — first touches of
    // unpopulated pages populate device-side without PCIe transfers.)
    let s = oversubscribed();
    for kind in [SystemKind::Um, SystemKind::Lms, SystemKind::Sentinel] {
        let r = s.run(kind).unwrap();
        let second = r.iters[1].elapsed;
        let last = r.iters.last().unwrap().elapsed;
        assert!(
            last <= second.scale(1.15),
            "{kind:?}: last {last} vs second {second}"
        );
    }
}

#[test]
fn energy_tracks_runtime() {
    let s = oversubscribed();
    let um = s.run(SystemKind::Um).unwrap();
    let dm = s.run_configured(tuned()).unwrap();
    // DeepUM finishes faster and burns less total energy (Fig. 9(c)).
    assert!(dm.energy_joules < um.energy_joules);
}

#[test]
fn vdnn_runs_cnns_but_not_transformers() {
    let cnn = Session::new(ModelKind::MobileNet, 8)
        .iterations(1)
        .device_memory(256 << 20)
        .host_memory(4 << 30);
    assert!(cnn.run(SystemKind::Vdnn).is_ok());

    let bert = Session::new(ModelKind::BertBase, 1)
        .iterations(1)
        .device_memory(8 << 30)
        .host_memory(32 << 30);
    assert!(matches!(
        bert.run(SystemKind::Vdnn),
        Err(RunError::Unsupported(_))
    ));
}

#[test]
fn um_oversubscription_succeeds_where_memory_is_short() {
    // The working set (~115 MiB) exceeds device memory 3x; UM still
    // completes because pages migrate on demand.
    let s = Session::new(ModelKind::MobileNet, 48)
        .iterations(1)
        .device_memory(40 << 20)
        .host_memory(8 << 30);
    let r = s.run(SystemKind::Um).unwrap();
    assert!(r.counters.gpu_page_faults > 0);
    assert!(r.counters.pages_evicted() > 0);
}

#[test]
fn host_memory_bounds_um_allocation() {
    let s = Session::new(ModelKind::MobileNet, 48)
        .iterations(1)
        .device_memory(40 << 20)
        .host_memory(32 << 20); // smaller than the working set
    assert!(matches!(
        s.run(SystemKind::Um),
        Err(RunError::OutOfMemory(_))
    ));
}

#[test]
fn tensor_swapping_systems_report_zero_faults() {
    let s = oversubscribed();
    for kind in [SystemKind::Lms, SystemKind::Capuchin, SystemKind::Sentinel] {
        let r = s.run(kind).unwrap();
        assert_eq!(r.counters.gpu_page_faults, 0, "{kind:?}");
        assert!(r.counters.bytes_h2d > 0, "{kind:?} must swap data in");
    }
}

#[test]
fn dlrm_gathers_resist_prefetching() {
    // The paper's DLRM result: irregular embedding lookups defeat
    // correlation prefetching — DeepUM's fault reduction is marginal
    // compared to a regular CNN at similar oversubscription.
    let dlrm = Session::new(ModelKind::Dlrm, 512)
        .iterations(3)
        .device_memory(24 << 30)
        .host_memory(64 << 30);
    let um = dlrm.run(SystemKind::Um).unwrap();
    let dm = dlrm.run(SystemKind::DeepUm).unwrap();
    // DeepUM never does *worse* than ~UM, but the win stays small.
    let speedup = dm.speedup_over(&um);
    assert!(speedup < 1.5, "DLRM speedup unexpectedly large: {speedup}");
}
