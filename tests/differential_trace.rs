//! Differential trace tests: run the same workload under naive UM and
//! DeepUM with tracing on, then cross-check the two event streams.
//!
//! The baseline trace tells us what the workload *demands*; the DeepUM
//! trace must account for all of it (coverage), must not sabotage the
//! running kernel (no eviction of a block the in-flight kernel then
//! faults back), and must not claim more prefetch hits than the chain
//! predicted or the prefetcher delivered (no phantom hits).

use std::collections::BTreeSet;

use deepum::baselines::suite::{run_system, RunParams, System};
use deepum::core::config::DeepumConfig;
use deepum::sim::costs::CostModel;
use deepum::torch::step::{TensorId, Workload, WorkloadBuilder};
use deepum::trace::{shared, TraceEvent, TraceRecord, Tracer};

/// A layered workload oversubscribing the small device below.
fn workload() -> Workload {
    let mut b = WorkloadBuilder::new("diff/b1", "diff", 1);
    let weights: Vec<TensorId> = (0..8).map(|_| b.persistent(2 << 20)).collect();
    let mut x = b.alloc(1 << 20);
    b.kernel("load").writes(&[x]).flops(1e6).launch();
    for (i, w) in weights.iter().enumerate() {
        let y = b.alloc(1 << 20);
        b.kernel(format!("layer{i}"))
            .args(&[i as u64])
            .reads(&[x, *w])
            .writes(&[y])
            .flops(1e10)
            .launch();
        b.free(x);
        x = y;
    }
    b.free(x);
    let w = b.build();
    w.validate().expect("workload is valid");
    w
}

fn params() -> RunParams {
    let mut p = RunParams::v100_32gb(3, 7);
    p.costs = CostModel::v100_32gb()
        .with_device_memory(8 << 20)
        .with_host_memory(1 << 30);
    p
}

fn trace_of(system: &System) -> Vec<TraceRecord> {
    let tracer = shared(Tracer::export());
    let mut p = params();
    p.tracer = Some(tracer.clone());
    run_system(system, &workload(), &p).expect("traced run completes");
    let mut t = tracer.borrow_mut();
    t.records().to_vec()
}

fn deepum() -> System {
    System::DeepUm(DeepumConfig::default().with_prefetch_degree(8))
}

/// Blocks that arrived on the demand path.
fn faulted_blocks(trace: &[TraceRecord]) -> BTreeSet<u64> {
    trace
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::PageMigration {
                block,
                prefetch: false,
                ..
            } => Some(block),
            _ => None,
        })
        .collect()
}

/// Blocks that arrived on the prefetch path.
fn prefetched_blocks(trace: &[TraceRecord]) -> BTreeSet<u64> {
    trace
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::PageMigration {
                block,
                prefetch: true,
                ..
            } => Some(block),
            _ => None,
        })
        .collect()
}

#[test]
fn deepum_covers_every_baseline_faulted_block() {
    let base = trace_of(&System::Um);
    let dm = trace_of(&deepum());

    let base_faulted = faulted_blocks(&base);
    assert!(!base_faulted.is_empty(), "baseline must fault");
    let mut covered = faulted_blocks(&dm);
    covered.extend(prefetched_blocks(&dm));

    let missing: Vec<u64> = base_faulted.difference(&covered).copied().collect();
    assert!(
        missing.is_empty(),
        "blocks {missing:?} faulted under naive UM but were neither \
         faulted nor prefetched under DeepUM — DeepUM skipped work"
    );
}

#[test]
fn no_demand_eviction_of_a_block_the_inflight_kernel_used() {
    // Within one kernel's begin/end window, demand eviction (the path
    // that *must* free pages to serve a fault) never picks a block the
    // kernel already used this launch — one it demand-migrated in or
    // landed a prefetch hit on. Stealing such a block would fault it
    // straight back and livelock the drain. Pre-eviction (`LruPre`) is
    // exempt: it is best-effort, runs off the critical path, and a bad
    // pick there costs bandwidth, not correctness.
    use deepum::trace::EvictReason;
    let dm = trace_of(&deepum());
    let mut in_kernel = false;
    let mut demand_evictions = 0u64;
    let mut used_now: BTreeSet<u64> = BTreeSet::new();
    for r in &dm {
        match r.event {
            TraceEvent::KernelBegin { .. } => {
                in_kernel = true;
                used_now.clear();
            }
            TraceEvent::KernelEnd { .. } => {
                in_kernel = false;
            }
            TraceEvent::PageMigration { block, .. } | TraceEvent::PrefetchHit { block, .. }
                if in_kernel =>
            {
                used_now.insert(block);
            }
            TraceEvent::EvictVictim { block, reason }
                if in_kernel && reason != EvictReason::LruPre =>
            {
                demand_evictions += 1;
                assert!(
                    !used_now.contains(&block),
                    "block {block} was used by the in-flight kernel and then \
                     demand-evicted within the same launch (t={}, {reason:?})",
                    r.t
                );
            }
            _ => {}
        }
    }
    assert!(
        demand_evictions > 0,
        "the oversubscribed run must exercise demand eviction"
    );
}

#[test]
fn prefetch_hits_never_exceed_chain_predictions() {
    let dm = trace_of(&deepum());
    let mut hit_pages = 0u64;
    let mut predicted_pages = 0u64;
    let mut prefetched_pages = 0u64;
    for r in &dm {
        match r.event {
            TraceEvent::PrefetchHit { pages, .. } => hit_pages += pages,
            TraceEvent::PrefetchEnqueue { pages, .. } => predicted_pages += pages,
            TraceEvent::PageMigration {
                pages,
                prefetch: true,
                ..
            } => prefetched_pages += pages,
            _ => {}
        }
    }
    assert!(hit_pages > 0, "DeepUM should land prefetch hits here");
    assert!(
        hit_pages <= predicted_pages,
        "{hit_pages} hit pages exceed the {predicted_pages} pages the chain predicted"
    );
    assert!(
        hit_pages <= prefetched_pages,
        "{hit_pages} hit pages exceed the {prefetched_pages} pages actually prefetched"
    );
}

#[test]
fn baseline_trace_is_prefetch_free_and_deepum_is_not() {
    let base = trace_of(&System::Um);
    assert!(
        prefetched_blocks(&base).is_empty(),
        "naive UM must never prefetch"
    );
    assert!(base.iter().all(|r| !matches!(
        r.event,
        TraceEvent::ChainFollow { .. }
            | TraceEvent::PrefetchEnqueue { .. }
            | TraceEvent::PrefetchHit { .. }
            | TraceEvent::CorrelationPredict { .. }
    )));
    let dm = trace_of(&deepum());
    assert!(!prefetched_blocks(&dm).is_empty(), "DeepUM must prefetch");
}
