//! Memory-pressure correctness across the stack: capacity invariants,
//! OOM boundaries, invalidation safety, and the batch-size frontier.

use deepum::baselines::executor::um::{run_um, UmRunConfig};
use deepum::baselines::report::RunError;
use deepum::core::config::DeepumConfig;
use deepum::core::driver::DeepumDriver;
use deepum::sim::costs::CostModel;
use deepum::torch::models::ModelKind;
use deepum::{Session, SystemKind};

#[test]
fn residency_never_exceeds_device_capacity() {
    // Drive DeepUM through three iterations of a heavily oversubscribed
    // model and check device accounting afterwards.
    let workload = ModelKind::MobileNet.build(48);
    let costs = CostModel::v100_32gb()
        .with_device_memory(48 << 20)
        .with_host_memory(8 << 30);
    let cfg = UmRunConfig {
        costs: costs.clone(),
        seed: 7,
        ..UmRunConfig::new(3)
    };
    let mut driver = DeepumDriver::new(costs, DeepumConfig::default());
    run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters()).unwrap();
    assert!(driver.um().resident_pages() <= driver.um().capacity_pages());
    assert!(driver.um().free_pages() <= driver.um().capacity_pages());
}

#[test]
fn deepum_batch_frontier_exceeds_swap_systems() {
    // The Table 3/7 effect in miniature: with a fixed small device and a
    // large host, DeepUM (UM-backed) runs batches that the device-bound
    // tensor-swapping pool cannot place.
    let device = 96u64 << 20;
    let host = 8u64 << 30;
    let runs = |batch: usize, kind: SystemKind| {
        Session::new(ModelKind::Dcgan, batch)
            .iterations(1)
            .device_memory(device)
            .host_memory(host)
            .run(kind)
    };
    // Find a batch DeepUM handles.
    let batch = 512;
    assert!(
        runs(batch, SystemKind::DeepUm).is_ok(),
        "deepum at b{batch}"
    );
    // The swap path needs whole operand tensors on device at once; at
    // this batch a single kernel's operands no longer fit 96 MiB.
    let lms = runs(batch, SystemKind::Lms);
    assert!(
        matches!(
            lms,
            Err(RunError::OutOfMemory(_)) | Err(RunError::Unsupported(_))
        ),
        "lms unexpectedly ran: {lms:?}"
    );
}

#[test]
fn invalidation_never_drops_live_data() {
    // With invalidation enabled, every page a kernel reads must still be
    // faultable/resident — the engine asserts progress internally, so
    // simply completing three iterations on a churn-heavy model with a
    // tiny device exercises the safety property.
    let s = Session::new(ModelKind::MobileNet, 48)
        .iterations(3)
        .device_memory(40 << 20)
        .host_memory(8 << 30);
    let r = s.run(SystemKind::DeepUm).unwrap();
    assert!(r.counters.pages_invalidated > 0, "invalidation must engage");
}

#[test]
fn um_runs_single_kernels_larger_than_device_memory() {
    // The paper's key UM advantage: a kernel whose working set exceeds
    // device memory still executes (pages stream through on demand),
    // where non-UM allocation would simply fail.
    let workload = ModelKind::Dcgan.build(256);
    let single_kernel_footprint = 64u64 << 20; // well above the device below
    let costs = CostModel::v100_32gb()
        .with_device_memory(single_kernel_footprint / 2)
        .with_host_memory(8 << 30);
    let cfg = UmRunConfig {
        costs: costs.clone(),
        seed: 7,
        ..UmRunConfig::new(1)
    };
    let mut driver = DeepumDriver::new(costs, DeepumConfig::default());
    let report = run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters());
    assert!(report.is_ok(), "UM path must stream through: {report:?}");
}

#[test]
fn oversubscription_ratio_drives_fault_volume() {
    // Faults grow as device memory shrinks (same workload, same seed).
    let faults_at = |mb: u64| {
        Session::new(ModelKind::MobileNet, 48)
            .iterations(2)
            .device_memory(mb << 20)
            .host_memory(8 << 30)
            .run(SystemKind::Um)
            .unwrap()
            .steady_faults_per_iter()
    };
    let plenty = faults_at(256);
    let tight = faults_at(64);
    let tiny = faults_at(40);
    assert!(plenty < tight, "{plenty} !< {tight}");
    assert!(tight < tiny, "{tight} !< {tiny}");
}
