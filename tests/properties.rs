//! Property-based integration tests: randomly generated workloads and
//! platform shapes must never break the stack's invariants.

use deepum::baselines::executor::um::{run_um, UmRunConfig};
use deepum::baselines::naive::NaiveUm;
use deepum::core::config::DeepumConfig;
use deepum::core::driver::DeepumDriver;
use deepum::gpu::engine::UmBackend as _;
use deepum::sim::costs::CostModel;
use deepum::torch::step::{TensorId, Workload, WorkloadBuilder};
use proptest::prelude::*;

/// Builds a random-but-valid layered workload: `layers` kernels, each
/// reading the previous activation and one weight, with sizes drawn from
/// `sizes_kb`.
fn build_workload(layers: usize, sizes_kb: &[u64]) -> Workload {
    let mut b = WorkloadBuilder::new("prop/b1", "prop", 1);
    let weights: Vec<TensorId> = sizes_kb
        .iter()
        .map(|&kb| b.persistent((kb + 1) << 10))
        .collect();
    let mut x = b.alloc(256 << 10);
    b.kernel("load").writes(&[x]).flops(1e6).launch();
    for i in 0..layers {
        let w = weights[i % weights.len()];
        let y = b.alloc(((sizes_kb[i % sizes_kb.len()] + 1) << 10).max(4096));
        b.kernel(format!("layer{i}"))
            .args(&[i as u64])
            .reads(&[x, w])
            .writes(&[y])
            .flops(1e8)
            .launch();
        b.free(x);
        x = y;
    }
    b.free(x);
    let w = b.build();
    w.validate().expect("generated workload is valid");
    w
}

fn platform(device_kb: u64) -> CostModel {
    CostModel::v100_32gb()
        .with_device_memory((device_kb << 10).max(8 << 20))
        .with_host_memory(1 << 30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DeepUM completes any layered workload on any (sane) device size,
    /// and its counters stay internally consistent.
    #[test]
    fn deepum_never_breaks_on_random_workloads(
        layers in 2usize..12,
        sizes_kb in prop::collection::vec(64u64..4096, 1..5),
        device_mb in 8u64..64,
        degree in 1usize..64,
    ) {
        let workload = build_workload(layers, &sizes_kb);
        let costs = platform(device_mb << 10);
        let cfg = UmRunConfig {
            costs: costs.clone(),
            seed: 7,
            ..UmRunConfig::new(2)
        };
        let dcfg = DeepumConfig::default().with_prefetch_degree(degree);
        let mut driver = DeepumDriver::new(costs.clone(), dcfg);
        let report = run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters()).unwrap();

        // Residency never exceeds device capacity.
        prop_assert!(driver.um().resident_pages() <= driver.um().capacity_pages());
        let c = report.counters;
        // Hits + waste never exceed what was prefetched.
        prop_assert!(c.prefetch_hits + c.prefetch_wasted <= c.pages_prefetched);
        // PCIe traffic never exceeds the pages made resident (first-touch
        // populations are free).
        prop_assert!(c.bytes_h2d <= (c.pages_faulted_in + c.pages_prefetched) * 4096);
        // Mispredictions are a subset of predictions.
        prop_assert!(c.exec_mispredictions <= c.exec_predictions);
        // Virtual time advanced and is the sum of the iterations.
        let sum: deepum::sim::time::Ns = report.iters.iter().map(|i| i.elapsed).sum();
        prop_assert_eq!(sum, report.total);
    }

    /// Naive UM and DeepUM agree on what was computed (same kernels, same
    /// compute time) even though their memory traffic differs.
    #[test]
    fn um_and_deepum_compute_the_same_work(
        layers in 2usize..8,
        device_mb in 8u64..32,
    ) {
        let workload = build_workload(layers, &[512, 1024]);
        let costs = platform(device_mb << 10);
        let cfg = UmRunConfig { costs: costs.clone(), seed: 7, ..UmRunConfig::new(2) };

        let mut um = NaiveUm::new(costs.clone());
        let um_r = run_um(&workload, &mut um, "um", &cfg, |b| b.counters()).unwrap();
        let mut dm = DeepumDriver::new(costs, DeepumConfig::default());
        let dm_r = run_um(&workload, &mut dm, "deepum", &cfg, |d| d.counters()).unwrap();

        prop_assert_eq!(um_r.counters.kernels_launched, workload.kernel_count() as u64 * 2);
        for (a, b) in um_r.iters.iter().zip(&dm_r.iters) {
            prop_assert_eq!(a.compute, b.compute);
        }
        // DeepUM never loses to UM by more than scheduling noise.
        prop_assert!(dm_r.total <= um_r.total.scale(1.10));
    }

    /// After a run, the DeepUM driver's UM state is still sane enough to
    /// answer residency queries for arbitrary blocks.
    #[test]
    fn residency_queries_are_total(
        layers in 2usize..6,
        probe in 0u64..10_000,
    ) {
        let workload = build_workload(layers, &[256]);
        let costs = platform(16 << 10);
        let cfg = UmRunConfig { costs: costs.clone(), seed: 7, ..UmRunConfig::new(1) };
        let mut driver = DeepumDriver::new(costs, DeepumConfig::default());
        run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters()).unwrap();
        let mask = deepum::mem::PageMask::full();
        let miss = driver.resident_miss(deepum::mem::BlockNum::new(probe), &mask);
        prop_assert!(miss.count() <= 512);
    }
}
