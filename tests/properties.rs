//! Property-based integration tests: randomly generated workloads and
//! platform shapes must never break the stack's invariants.

use deepum::baselines::executor::um::{run_um, UmRunConfig};
use deepum::baselines::naive::NaiveUm;
use deepum::core::config::DeepumConfig;
use deepum::core::driver::DeepumDriver;
use deepum::gpu::engine::UmBackend as _;
use deepum::sim::costs::CostModel;
use deepum::torch::step::{TensorId, Workload, WorkloadBuilder};
use deepum::trace::{shared, TraceEvent, TraceRecord, Tracer};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Builds a random-but-valid layered workload: `layers` kernels, each
/// reading the previous activation and one weight, with sizes drawn from
/// `sizes_kb`.
fn build_workload(layers: usize, sizes_kb: &[u64]) -> Workload {
    let mut b = WorkloadBuilder::new("prop/b1", "prop", 1);
    let weights: Vec<TensorId> = sizes_kb
        .iter()
        .map(|&kb| b.persistent((kb + 1) << 10))
        .collect();
    let mut x = b.alloc(256 << 10);
    b.kernel("load").writes(&[x]).flops(1e6).launch();
    for i in 0..layers {
        let w = weights[i % weights.len()];
        let y = b.alloc(((sizes_kb[i % sizes_kb.len()] + 1) << 10).max(4096));
        b.kernel(format!("layer{i}"))
            .args(&[i as u64])
            .reads(&[x, w])
            .writes(&[y])
            .flops(1e8)
            .launch();
        b.free(x);
        x = y;
    }
    b.free(x);
    let w = b.build();
    w.validate().expect("generated workload is valid");
    w
}

fn platform(device_kb: u64) -> CostModel {
    CostModel::v100_32gb()
        .with_device_memory((device_kb << 10).max(8 << 20))
        .with_host_memory(1 << 30)
}

/// Runs DeepUM over a random workload with the given tracer installed
/// and hands back the tracer once the run completes.
fn traced_run(
    workload: &Workload,
    costs: CostModel,
    degree: usize,
    tracer: deepum::trace::SharedTracer,
) {
    let cfg = UmRunConfig {
        costs: costs.clone(),
        seed: 7,
        tracer: Some(tracer),
        ..UmRunConfig::new(2)
    };
    let dcfg = DeepumConfig::default().with_prefetch_degree(degree);
    let mut driver = DeepumDriver::new(costs, dcfg);
    run_um(workload, &mut driver, "deepum", &cfg, |d| d.counters()).unwrap();
}

/// Checks the structural invariants every trace must satisfy. Returns
/// an error string instead of panicking so proptest can shrink on it.
fn check_trace_invariants(records: &[TraceRecord]) -> Result<(), String> {
    // 1. Virtual timestamps are monotone non-decreasing, except across a
    //    `Restored` marker, where the sim clock legitimately rewinds.
    let mut last_t = 0u64;
    // 2. Kernel begin/end events balance: ends match the one open begin
    //    by seq, launches never nest, and nothing is left open.
    let mut open: Option<u64> = None;
    // 3. Every migration is matched by a residency change: pages leaving
    //    a block (write-back or invalidate) never exceed the pages that
    //    migrated in, at every prefix of the stream, per block.
    let mut resident: BTreeMap<u64, i64> = BTreeMap::new();

    for r in records {
        if r.t < last_t {
            return Err(format!("timestamp went backwards: {} after {last_t}", r.t));
        }
        last_t = r.t;
        match &r.event {
            TraceEvent::KernelBegin { seq, .. } => {
                if let Some(inner) = open {
                    return Err(format!("kernel {seq} began inside open kernel {inner}"));
                }
                open = Some(*seq);
            }
            TraceEvent::KernelEnd { seq, .. } => {
                if open != Some(*seq) {
                    return Err(format!("kernel {seq} ended but open was {open:?}"));
                }
                open = None;
            }
            TraceEvent::PageMigration { block, pages, .. } => {
                if *pages == 0 || *pages > 512 {
                    return Err(format!("migration of {pages} pages on block {block}"));
                }
                *resident.entry(*block).or_insert(0) += *pages as i64;
            }
            TraceEvent::Invalidate { block, pages }
            | TraceEvent::WriteBack { block, pages, .. } => {
                let r = resident.entry(*block).or_insert(0);
                *r -= *pages as i64;
                if *r < 0 {
                    return Err(format!(
                        "block {block}: {pages} pages left without ever migrating in"
                    ));
                }
            }
            TraceEvent::Restored { .. } => {
                // Clock rewinds to the checkpoint; later timestamps only
                // need to be monotone from here on.
                last_t = 0;
            }
            _ => {}
        }
    }
    if let Some(seq) = open {
        return Err(format!("kernel {seq} never ended"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// DeepUM completes any layered workload on any (sane) device size,
    /// and its counters stay internally consistent.
    #[test]
    fn deepum_never_breaks_on_random_workloads(
        layers in 2usize..12,
        sizes_kb in prop::collection::vec(64u64..4096, 1..5),
        device_mb in 8u64..64,
        degree in 1usize..64,
    ) {
        let workload = build_workload(layers, &sizes_kb);
        let costs = platform(device_mb << 10);
        let cfg = UmRunConfig {
            costs: costs.clone(),
            seed: 7,
            ..UmRunConfig::new(2)
        };
        let dcfg = DeepumConfig::default().with_prefetch_degree(degree);
        let mut driver = DeepumDriver::new(costs.clone(), dcfg);
        let report = run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters()).unwrap();

        // Residency never exceeds device capacity.
        prop_assert!(driver.um().resident_pages() <= driver.um().capacity_pages());
        let c = report.counters;
        // Hits + waste never exceed what was prefetched.
        prop_assert!(c.prefetch_hits + c.prefetch_wasted <= c.pages_prefetched);
        // PCIe traffic never exceeds the pages made resident (first-touch
        // populations are free).
        prop_assert!(c.bytes_h2d <= (c.pages_faulted_in + c.pages_prefetched) * 4096);
        // Mispredictions are a subset of predictions.
        prop_assert!(c.exec_mispredictions <= c.exec_predictions);
        // Virtual time advanced and is the sum of the iterations.
        let sum: deepum::sim::time::Ns = report.iters.iter().map(|i| i.elapsed).sum();
        prop_assert_eq!(sum, report.total);
    }

    /// Naive UM and DeepUM agree on what was computed (same kernels, same
    /// compute time) even though their memory traffic differs.
    #[test]
    fn um_and_deepum_compute_the_same_work(
        layers in 2usize..8,
        device_mb in 8u64..32,
    ) {
        let workload = build_workload(layers, &[512, 1024]);
        let costs = platform(device_mb << 10);
        let cfg = UmRunConfig { costs: costs.clone(), seed: 7, ..UmRunConfig::new(2) };

        let mut um = NaiveUm::new(costs.clone());
        let um_r = run_um(&workload, &mut um, "um", &cfg, |b| b.counters()).unwrap();
        let mut dm = DeepumDriver::new(costs, DeepumConfig::default());
        let dm_r = run_um(&workload, &mut dm, "deepum", &cfg, |d| d.counters()).unwrap();

        prop_assert_eq!(um_r.counters.kernels_launched, workload.kernel_count() as u64 * 2);
        for (a, b) in um_r.iters.iter().zip(&dm_r.iters) {
            prop_assert_eq!(a.compute, b.compute);
        }
        // DeepUM never loses to UM by more than scheduling noise.
        prop_assert!(dm_r.total <= um_r.total.scale(1.10));
    }

    /// Any traced DeepUM run yields a structurally well-formed event
    /// stream: monotone virtual timestamps, balanced kernel begin/end
    /// pairs, and no block losing pages it never gained.
    #[test]
    fn traces_are_well_formed(
        layers in 2usize..10,
        sizes_kb in prop::collection::vec(64u64..4096, 1..5),
        device_mb in 8u64..64,
        degree in 1usize..32,
    ) {
        let workload = build_workload(layers, &sizes_kb);
        let tracer = shared(Tracer::export());
        traced_run(&workload, platform(device_mb << 10), degree, tracer.clone());
        let mut t = tracer.borrow_mut();
        prop_assert_eq!(t.dropped(), 0, "export sink never drops");
        prop_assert!(t.emitted() > 0, "a traced run emits events");
        if let Err(e) = check_trace_invariants(t.records()) {
            return Err(proptest::test_runner::TestCaseError::fail(e));
        }
    }

    /// A ring sink smaller than the event stream must overflow loudly:
    /// the dropped counter rises and the report carries the marker,
    /// while the ring itself holds at most `capacity` records.
    #[test]
    fn ring_overflow_sets_the_dropped_marker(
        capacity in 1usize..32,
        layers in 3usize..8,
    ) {
        let workload = build_workload(layers, &[1024]);
        let tracer = shared(Tracer::ring(capacity));
        traced_run(&workload, platform(8 << 10), 8, tracer.clone());
        let mut t = tracer.borrow_mut();
        prop_assert!(
            t.emitted() > capacity as u64,
            "workload must outgrow the ring ({} events, capacity {capacity})",
            t.emitted()
        );
        prop_assert!(t.records().len() <= capacity);
        prop_assert_eq!(t.dropped(), t.emitted() - t.records().len() as u64);
        let report = t.report();
        prop_assert_eq!(report.events_dropped, t.dropped());
        prop_assert!(report.events_dropped > 0, "overflow must be marked");
    }

    /// After a run, the DeepUM driver's UM state is still sane enough to
    /// answer residency queries for arbitrary blocks.
    #[test]
    fn residency_queries_are_total(
        layers in 2usize..6,
        probe in 0u64..10_000,
    ) {
        let workload = build_workload(layers, &[256]);
        let costs = platform(16 << 10);
        let cfg = UmRunConfig { costs: costs.clone(), seed: 7, ..UmRunConfig::new(1) };
        let mut driver = DeepumDriver::new(costs, DeepumConfig::default());
        run_um(&workload, &mut driver, "deepum", &cfg, |d| d.counters()).unwrap();
        let mask = deepum::mem::PageMask::full();
        let miss = driver.resident_miss(deepum::mem::BlockNum::new(probe), &mask);
        prop_assert!(miss.count() <= 512);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The degradation ladder is monotone: it escalates one level per
    /// observation and only while overloaded (miss-EWMA at or above the
    /// threshold, or the governor elevated), and de-escalates one level
    /// only after a full hysteresis window of consecutive clean
    /// observations.
    #[test]
    fn ladder_is_monotone_under_arbitrary_observations(
        threshold in 1u64..80,
        hysteresis in 1u64..6,
        obs in prop::collection::vec((0u64..20, 0u64..20, prop::bool::ANY), 1..64),
    ) {
        use deepum::serve::{DegradationLadder, LadderConfig};
        use deepum::trace::ServeLevel;

        let cfg = LadderConfig {
            miss_pct_threshold: threshold,
            hysteresis_cycles: hysteresis,
            ..LadderConfig::default()
        };
        let mut ladder = DegradationLadder::new(cfg);
        // Severity rung, for the one-level-at-a-time checks.
        let rung = |l: ServeLevel| match l {
            ServeLevel::Full => 0u8,
            ServeLevel::ReducedWindow => 1,
            ServeLevel::DemandOnly => 2,
            ServeLevel::Shed => 3,
        };
        // Shadow clean-streak counter, mirroring the documented rule.
        let mut clean_streak = 0u64;
        let mut ups = 0u64;
        let mut downs = 0u64;
        for (misses, extra, pressured) in obs {
            let requests = misses + extra;
            let transition = ladder.observe_cycle(misses, requests, pressured);
            // Post-update overload signal, exactly what the breaker acts on.
            let overloaded = ladder.miss_ewma_pct() >= threshold || pressured;
            if overloaded {
                clean_streak = 0;
            } else {
                clean_streak += 1;
            }
            match transition {
                Some((from, to)) if to > from => {
                    ups += 1;
                    // Escalation only while overloaded, one level at a time.
                    prop_assert!(overloaded);
                    prop_assert_eq!(rung(to), rung(from) + 1);
                }
                Some((from, to)) => {
                    downs += 1;
                    // De-escalation only off the back of a full clean window.
                    prop_assert!(!overloaded);
                    prop_assert!(clean_streak >= hysteresis);
                    prop_assert_eq!(rung(from), rung(to) + 1);
                    clean_streak = 0;
                }
                None => {}
            }
            // The level is always a real rung and `worst` never trails it.
            prop_assert!(ladder.level() >= ServeLevel::Full);
            prop_assert!(ladder.level() <= ServeLevel::Shed);
            prop_assert!(ladder.worst >= ladder.level() || ladder.deescalations > 0);
        }
        prop_assert_eq!(ladder.escalations, ups);
        prop_assert_eq!(ladder.deescalations, downs);
    }

    /// Every request that arrives at a serving run terminates exactly
    /// once: as an on-time completion, a deadline miss, or a typed
    /// shed — never silently dropped, regardless of load, deadline
    /// tightness, or injected soft faults.
    #[test]
    fn every_arrived_request_terminates(
        endpoints in 1usize..4,
        base_rps in 1u64..6,
        deadline_us in 20u64..2_000,
        fail_pct in 0u64..30,
        device_mb in 24u64..64,
        seed in 0u64..1_000,
    ) {
        use deepum::serve::{EndpointSpec, LadderConfig, LoadCurve, ServeSim, ServeSpec};
        use deepum::sim::time::Ns;
        use deepum::InjectionPlan;
        use deepum::torch::perf::PerfModel;

        let mut spec = ServeSpec::new()
            .cycles(10)
            .load(LoadCurve::new(base_rps).period(5).burst(3, 7, 2))
            .seed(seed)
            .plan(InjectionPlan {
                seed: seed ^ 0xF00D,
                request_fail_rate: fail_pct as f64 / 100.0,
                max_retries: 2,
                ..InjectionPlan::default()
            })
            .ladder(Some(LadderConfig::default()));
        for idx in 0..endpoints {
            spec = spec.endpoint(
                EndpointSpec::new(format!("ep-{idx}"))
                    .weights(8 << 20)
                    .layers(3)
                    .kv_per_token(64 << 10)
                    .tokens(2, 8)
                    .deadline(Ns::from_nanos(deadline_us * 1_000)),
            );
        }
        let costs = CostModel::v100_32gb()
            .with_device_memory(device_mb << 20)
            .with_host_memory(1 << 30);
        let outcome = ServeSim::new(costs, PerfModel::v100(), spec).run();

        prop_assert!(outcome.validation.is_ok(), "{:?}", outcome.validation);
        prop_assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
        let serving = outcome.report.serving.as_ref();
        prop_assert!(serving.is_some());
        if let Some(s) = serving {
            for ep in &s.endpoints {
                // Terminates exactly once, at both bookkeeping levels.
                prop_assert_eq!(ep.completed + ep.shed, ep.requests, "{}", ep.name);
                prop_assert_eq!(ep.on_time + ep.missed, ep.completed, "{}", ep.name);
            }
            let requests: u64 = s.endpoints.iter().map(|e| e.requests).sum();
            let completed: u64 = s.endpoints.iter().map(|e| e.completed).sum();
            prop_assert_eq!(requests, s.total_requests);
            prop_assert_eq!(completed + s.total_shed, s.total_requests);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `PageMask` set algebra agrees with a naive `BTreeSet<usize>`
    /// shadow model under arbitrary op sequences: membership, counts,
    /// union/intersect/subtract, subset/overlap predicates, and the
    /// ascending `iter_ones` order the migration engine depends on.
    #[test]
    fn page_mask_matches_btreeset_shadow(
        ops in prop::collection::vec(
            (0u8..6, 0usize..deepum::mem::PAGES_PER_BLOCK, 0usize..deepum::mem::PAGES_PER_BLOCK),
            1..96,
        ),
    ) {
        use deepum::mem::{PageMask, PAGES_PER_BLOCK};
        use std::collections::BTreeSet;

        let mut mask = PageMask::empty();
        let mut shadow: BTreeSet<usize> = BTreeSet::new();
        // A second (mask, shadow) pair for the binary ops.
        let mut other = PageMask::empty();
        let mut other_shadow: BTreeSet<usize> = BTreeSet::new();

        for (op, a, b) in ops {
            match op {
                0 => {
                    mask.set(a);
                    shadow.insert(a);
                }
                1 => {
                    mask.clear(a);
                    shadow.remove(&a);
                }
                2 => {
                    other.set(b);
                    other_shadow.insert(b);
                }
                3 => {
                    mask.union_with(&other);
                    shadow.extend(other_shadow.iter().copied());
                }
                4 => {
                    mask.subtract_with(&other);
                    shadow = shadow.difference(&other_shadow).copied().collect();
                }
                5 => {
                    let lo = a.min(b);
                    let hi = a.max(b);
                    mask = PageMask::from_range(lo..hi);
                    shadow = (lo..hi).collect();
                }
                _ => unreachable!(),
            }
            prop_assert_eq!(mask.count(), shadow.len());
            prop_assert_eq!(mask.is_empty(), shadow.is_empty());
            prop_assert_eq!(mask.is_full(), shadow.len() == PAGES_PER_BLOCK);
            prop_assert_eq!(mask.get(a), shadow.contains(&a));
            prop_assert_eq!(
                mask.intersects(&other),
                !shadow.is_disjoint(&other_shadow)
            );
            prop_assert_eq!(
                mask.is_subset_of(&other),
                shadow.is_subset(&other_shadow)
            );
            let inter: BTreeSet<usize> =
                shadow.intersection(&other_shadow).copied().collect();
            prop_assert_eq!(mask.intersect(&other).count(), inter.len());
            // iter_ones yields exactly the shadow members, ascending.
            let ones: Vec<usize> = mask.iter_ones().collect();
            let want: Vec<usize> = shadow.iter().copied().collect();
            prop_assert_eq!(ones, want);
            // Word round-trip is lossless.
            prop_assert_eq!(PageMask::from_words(mask.to_words()), mask);
        }
    }

    /// `DenseBlockSet` agrees with a naive `BTreeSet<BlockNum>` shadow
    /// model under arbitrary insert/remove/clear sequences, including
    /// across VA-stripe boundaries, and iterates in the same ascending
    /// order `BTreeSet` did before the rewrite.
    #[test]
    fn dense_block_set_matches_btreeset_shadow(
        ops in prop::collection::vec(
            (0u8..3, 0u64..3, 0u64..600),
            1..128,
        ),
    ) {
        use deepum::mem::bitmap::STRIPE_BLOCK_SHIFT;
        use deepum::mem::{BlockNum, DenseBlockSet};
        use std::collections::BTreeSet;

        let mut set = DenseBlockSet::new();
        let mut shadow: BTreeSet<BlockNum> = BTreeSet::new();
        for (op, stripe, offset) in ops {
            let block = BlockNum::new((stripe << STRIPE_BLOCK_SHIFT) + offset);
            match op {
                0 => {
                    prop_assert_eq!(set.insert(block), shadow.insert(block));
                }
                1 => {
                    prop_assert_eq!(set.remove(block), shadow.remove(&block));
                }
                2 => {
                    set.clear();
                    shadow.clear();
                }
                _ => unreachable!(),
            }
            prop_assert_eq!(set.len(), shadow.len());
            prop_assert_eq!(set.is_empty(), shadow.is_empty());
            prop_assert_eq!(set.contains(block), shadow.contains(&block));
            let got: Vec<BlockNum> = set.iter().collect();
            let want: Vec<BlockNum> = shadow.iter().copied().collect();
            prop_assert_eq!(got, want);
        }
    }

    /// `BlockTable` dense ids are first-touch-stable across arbitrary
    /// evict/re-fault churn: once a block gets an id it keeps it
    /// forever, ids are consecutive in first-touch order, live contents
    /// match a `BTreeMap` shadow, and iteration stays ascending.
    #[test]
    fn block_table_ids_stable_across_evict_refault(
        ops in prop::collection::vec(
            (0u8..3, 0u64..3, 0u64..200),
            1..128,
        ),
    ) {
        use deepum::mem::bitmap::STRIPE_BLOCK_SHIFT;
        use deepum::mem::BlockNum;
        use deepum::um::BlockTable;
        use std::collections::BTreeMap;

        let mut table = BlockTable::new();
        // block → (first-touch id, live?) plus a touch counter for the
        // next id, mirroring the documented allocation rule.
        let mut ids: BTreeMap<BlockNum, u32> = BTreeMap::new();
        let mut live: BTreeMap<BlockNum, u64> = BTreeMap::new();
        let mut next_id = 0u32;

        for (op, stripe, offset) in ops {
            let block = BlockNum::new((stripe << STRIPE_BLOCK_SHIFT) + offset);
            match op {
                // Fault the block in (entry-or-default) and stamp it.
                0 => {
                    let epoch = u64::from(next_id) + 1;
                    table.ensure(block).last_epoch = epoch;
                    ids.entry(block).or_insert_with(|| {
                        let id = next_id;
                        next_id += 1;
                        id
                    });
                    live.insert(block, epoch);
                }
                // Evict: state goes away, the id must not.
                1 => {
                    prop_assert_eq!(table.remove(block).is_some(), live.remove(&block).is_some());
                }
                // Probe without mutating.
                2 => {
                    prop_assert_eq!(table.contains_key(block), live.contains_key(&block));
                }
                _ => unreachable!(),
            }
            // Ids: assigned first-touch, never recycled, never moved.
            for (&b, &id) in &ids {
                prop_assert_eq!(table.dense_id(b), Some(id), "{} lost its dense id", b);
            }
            prop_assert_eq!(table.len(), live.len());
            // Live contents and ascending iteration match the shadow.
            let got: Vec<(BlockNum, u64)> =
                table.iter().map(|(b, s)| (b, s.last_epoch)).collect();
            let want: Vec<(BlockNum, u64)> =
                live.iter().map(|(&b, &e)| (b, e)).collect();
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(u64::from(next_id), ids.len() as u64);
    }
}
