#!/usr/bin/env bash
# Full local CI: build, tests, lints, formatting — all against the
# committed Cargo.lock so results are reproducible offline.
#
# Optional stages:
#   --soak   run the deepum-chaos crash-recovery soak (fixed seed grid,
#            wall-clock budgeted). Off by default: tier-1 stays fast.
set -euo pipefail
cd "$(dirname "$0")"

SOAK=0
for arg in "$@"; do
  case "$arg" in
    --soak) SOAK=1 ;;
    *) echo "unknown option: $arg (known: --soak)" >&2; exit 2 ;;
  esac
done

echo "== build (release) =="
cargo build --release --locked

echo "== tests =="
cargo test -q --locked --workspace

echo "== deepum-tidy =="
cargo run -q --locked -p deepum-analysis -- --check .

echo "== clippy =="
cargo clippy --locked --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

if [ "$SOAK" -eq 1 ]; then
  echo "== chaos soak =="
  cargo run -q --locked --release -p deepum-bench --bin deepum_chaos -- \
    --seeds 16 --budget-secs 300 --iters 2
fi

echo "CI OK"
