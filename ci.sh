#!/usr/bin/env bash
# Full local CI: build, tests, lints, formatting — all against the
# committed Cargo.lock so results are reproducible offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --locked

echo "== tests =="
cargo test -q --locked --workspace

echo "== deepum-tidy =="
cargo run -q --locked -p deepum-analysis -- --check .

echo "== clippy =="
cargo clippy --locked --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

echo "CI OK"
