#!/usr/bin/env bash
# Full local CI: build, tests, lints, formatting — all against the
# committed Cargo.lock so results are reproducible offline.
#
# Optional stages:
#   --soak      run the deepum-chaos crash-recovery soak (fixed seed
#               grid, wall-clock budgeted) plus the governed
#               oversubscription sweep, the multi-tenant scheduler
#               sweep, the inference-serving sweep, the device-wear
#               sweep (two retirement rates), and the
#               serial-vs-parallel determinism sweep. Off by default:
#               tier-1 stays fast.
#   --bench     run the full deepum_suite grid (serial + parallel with
#               byte-identity asserted, gated against
#               ci/bench-baseline.json for per-cell hash drift and
#               >25% wall-clock regressions) emitting BENCH_suite.json,
#               then deepum_mtbench emitting BENCH_multitenant.json
#               (simulated-kernels/sec and wall-clock, solo vs 2/4/8
#               tenants) plus BENCH_serving.json (requests/sec and
#               simulated-kernels/sec at 1/2/4 endpoints) in the
#               repository root.
#   --coverage  run cargo llvm-cov over the workspace and compare line
#               coverage against ci/coverage-baseline.txt (recording the
#               baseline on the first run). Skipped with a notice when
#               cargo-llvm-cov is not installed.
set -euo pipefail
cd "$(dirname "$0")"

SOAK=0
BENCH=0
COVERAGE=0
for arg in "$@"; do
  case "$arg" in
    --soak) SOAK=1 ;;
    --bench) BENCH=1 ;;
    --coverage) COVERAGE=1 ;;
    *) echo "unknown option: $arg (known: --soak, --bench, --coverage)" >&2; exit 2 ;;
  esac
done

echo "== build (release) =="
cargo build --release --locked

echo "== tests =="
cargo test -q --locked --workspace

echo "== deepum-tidy =="
# The baseline grandfathers pre-existing hot-path-alloc counts; new
# violations AND stale (already-fixed) entries both fail the run.
cargo run -q --locked -p deepum-analysis -- --check --baseline ci/tidy-baseline.json .

echo "== clippy =="
cargo clippy --locked --workspace --all-targets -- -D warnings

echo "== rustfmt =="
cargo fmt --check

if [ "$SOAK" -eq 1 ]; then
  echo "== chaos soak =="
  cargo run -q --locked --release -p deepum-bench --bin deepum_chaos -- \
    --seeds 16 --budget-secs 300 --iters 2
  echo "== oversubscription soak =="
  for ratio in 150 250 400; do
    cargo run -q --locked --release -p deepum-bench --bin deepum_chaos -- \
      --oversub "$ratio" --seeds 8 --budget-secs 120 --iters 2
  done
  echo "== multi-tenant soak =="
  for tenants in 2 4 8; do
    cargo run -q --locked --release -p deepum-bench --bin deepum_chaos -- \
      --tenants "$tenants" --seeds 8 --budget-secs 120 --iters 2
  done
  echo "== serving soak =="
  for rps in 2 6; do
    cargo run -q --locked --release -p deepum-bench --bin deepum_chaos -- \
      --serve "$rps" --seeds 8 --budget-secs 120
  done
  echo "== device-wear soak =="
  for ppm in 500 50000; do
    cargo run -q --locked --release -p deepum-bench --bin deepum_chaos -- \
      --wear "$ppm" --seeds 8 --budget-secs 120 --iters 2
  done
  echo "== parallel determinism soak =="
  cargo run -q --locked --release -p deepum-bench --bin deepum_chaos -- \
    --parallel --seeds 16 --budget-secs 120 --iters 2
fi

if [ "$BENCH" -eq 1 ]; then
  echo "== suite bench =="
  cargo run -q --locked --release -p deepum-bench --bin deepum_suite -- \
    --baseline ci/bench-baseline.json --out BENCH_suite.json
  echo "== multi-tenant bench =="
  cargo run -q --locked --release -p deepum-bench --bin deepum_mtbench
  echo "== inference-serving bench =="
  cargo run -q --locked --release -p deepum-bench --bin deepum_mtbench -- --serve
fi

if [ "$COVERAGE" -eq 1 ]; then
  echo "== coverage =="
  if cargo llvm-cov --version >/dev/null 2>&1; then
    BASELINE_FILE=ci/coverage-baseline.txt
    # Line coverage percentage, truncated to an integer so the gate is
    # robust against sub-percent jitter.
    PCT=$(cargo llvm-cov --locked --workspace --summary-only 2>/dev/null \
      | awk '/^TOTAL/ { gsub(/%/, "", $10); printf "%d", $10 }')
    if [ -z "$PCT" ]; then
      echo "coverage: could not parse llvm-cov summary output" >&2
      exit 1
    fi
    if [ -f "$BASELINE_FILE" ]; then
      BASE=$(cat "$BASELINE_FILE")
      echo "coverage: ${PCT}% lines (baseline ${BASE}%)"
      if [ "$PCT" -lt "$BASE" ]; then
        echo "coverage regressed below the recorded baseline; raise tests or re-bless $BASELINE_FILE" >&2
        exit 1
      fi
    else
      mkdir -p "$(dirname "$BASELINE_FILE")"
      echo "$PCT" > "$BASELINE_FILE"
      echo "coverage: ${PCT}% lines (baseline recorded in $BASELINE_FILE)"
    fi
  else
    echo "coverage: cargo-llvm-cov is not installed; skipping (install with 'cargo install cargo-llvm-cov')"
  fi
fi

echo "CI OK"
